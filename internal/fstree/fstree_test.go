package fstree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"expelliarmus/internal/vdisk"
)

func newFS(t *testing.T, size int64) *FS {
	t.Helper()
	d := vdisk.New("test", size, vdisk.DefaultClusterSize)
	fs, err := Format(d, 1024)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestWriteReadFile(t *testing.T) {
	fs := newFS(t, 4<<20)
	data := []byte("hello filesystem")
	if err := fs.WriteFile("/etc/hostname", nil); err == nil {
		t.Fatal("write without parent dir succeeded")
	}
	if err := fs.MkdirAll("/etc"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/etc/hostname", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/etc/hostname")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("ReadFile = %q", got)
	}
	if fs.NumFiles() != 1 {
		t.Fatalf("NumFiles = %d, want 1", fs.NumFiles())
	}
}

func TestWriteFileReplace(t *testing.T) {
	fs := newFS(t, 4<<20)
	fs.MkdirAll("/var")
	big := bytes.Repeat([]byte{1}, 100000)
	if err := fs.WriteFile("/var/log", big); err != nil {
		t.Fatal(err)
	}
	used := fs.UsedBytes()
	small := []byte("tiny")
	if err := fs.WriteFile("/var/log", small); err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.ReadFile("/var/log"); !bytes.Equal(got, small) {
		t.Fatalf("replace failed: %q", got)
	}
	if fs.UsedBytes() >= used {
		t.Fatalf("UsedBytes %d did not shrink from %d after replacing big file", fs.UsedBytes(), used)
	}
	if fs.NumFiles() != 1 {
		t.Fatalf("NumFiles = %d after replace, want 1", fs.NumFiles())
	}
}

func TestEmptyFile(t *testing.T) {
	fs := newFS(t, 1<<20)
	if err := fs.WriteFile("/empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty file read %d bytes", len(got))
	}
	fi, err := fs.Stat("/empty")
	if err != nil || fi.Size != 0 || fi.IsDir {
		t.Fatalf("Stat = %+v, %v", fi, err)
	}
}

func TestMkdirAllIdempotentAndNested(t *testing.T) {
	fs := newFS(t, 4<<20)
	if err := fs.MkdirAll("/a/b/c/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/a/b/c/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/a/b"); err != nil {
		t.Fatal(err)
	}
	if fs.NumDirs() != 5 { // root + a,b,c,d
		t.Fatalf("NumDirs = %d, want 5", fs.NumDirs())
	}
	fi, err := fs.Stat("/a/b/c")
	if err != nil || !fi.IsDir {
		t.Fatalf("Stat /a/b/c = %+v, %v", fi, err)
	}
}

func TestMkdirOverFileFails(t *testing.T) {
	fs := newFS(t, 1<<20)
	fs.WriteFile("/x", []byte("f"))
	if err := fs.MkdirAll("/x/y"); err == nil {
		t.Fatal("MkdirAll through a file succeeded")
	}
}

func TestReadDirSorted(t *testing.T) {
	fs := newFS(t, 4<<20)
	fs.MkdirAll("/d")
	names := []string{"zeta", "alpha", "mid"}
	for _, n := range names {
		fs.WriteFile("/d/"+n, []byte(n))
	}
	infos, err := fs.ReadDir("/d")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 {
		t.Fatalf("ReadDir returned %d entries", len(infos))
	}
	want := []string{"/d/alpha", "/d/mid", "/d/zeta"}
	for i, fi := range infos {
		if fi.Path != want[i] {
			t.Fatalf("entry %d = %q, want %q", i, fi.Path, want[i])
		}
	}
}

func TestRemove(t *testing.T) {
	fs := newFS(t, 4<<20)
	fs.MkdirAll("/dir")
	fs.WriteFile("/dir/f", bytes.Repeat([]byte{2}, 50000))
	used := fs.UsedBytes()
	if err := fs.Remove("/dir"); err == nil {
		t.Fatal("removed non-empty directory")
	}
	if err := fs.Remove("/dir/f"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/dir/f") {
		t.Fatal("file exists after Remove")
	}
	if fs.UsedBytes() >= used {
		t.Fatal("blocks not reclaimed")
	}
	if err := fs.Remove("/dir"); err != nil {
		t.Fatalf("removing now-empty dir: %v", err)
	}
	if err := fs.Remove("/dir"); err == nil {
		t.Fatal("double remove succeeded")
	}
	if fs.NumFiles() != 0 || fs.NumDirs() != 1 {
		t.Fatalf("counts = %d files, %d dirs", fs.NumFiles(), fs.NumDirs())
	}
}

func TestRemoveAll(t *testing.T) {
	fs := newFS(t, 4<<20)
	paths := []string{"/usr/bin/tool", "/usr/bin/other", "/usr/lib/libx", "/usr/share/doc/readme"}
	for _, p := range paths {
		fs.MkdirAll(p[:strings.LastIndex(p, "/")])
		fs.WriteFile(p, []byte(p))
	}
	if err := fs.RemoveAll("/usr"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/usr") {
		t.Fatal("/usr survived RemoveAll")
	}
	if fs.NumFiles() != 0 {
		t.Fatalf("NumFiles = %d", fs.NumFiles())
	}
	// Removing a missing path is not an error.
	if err := fs.RemoveAll("/nothing/here"); err != nil {
		t.Fatal(err)
	}
}

func TestDiskShrinksOnRemove(t *testing.T) {
	d := vdisk.New("shrink", 8<<20, vdisk.DefaultClusterSize)
	fs, err := Format(d, 512)
	if err != nil {
		t.Fatal(err)
	}
	fs.MkdirAll("/data")
	payload := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(payload)
	fs.WriteFile("/data/big", payload)
	allocated := d.AllocatedBytes()
	fs.Remove("/data/big")
	if d.AllocatedBytes() >= allocated {
		t.Fatalf("disk allocation %d did not shrink from %d", d.AllocatedBytes(), allocated)
	}
}

func TestWalkVisitsEverything(t *testing.T) {
	fs := newFS(t, 4<<20)
	files := []string{"/a/1", "/a/2", "/a/b/3", "/c/4"}
	for _, p := range files {
		fs.MkdirAll(p[:strings.LastIndex(p, "/")])
		fs.WriteFile(p, []byte(p))
	}
	var gotFiles, gotDirs []string
	err := fs.Walk("/", func(fi FileInfo) error {
		if fi.IsDir {
			gotDirs = append(gotDirs, fi.Path)
		} else {
			gotFiles = append(gotFiles, fi.Path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(gotFiles)
	if fmt.Sprint(gotFiles) != fmt.Sprint(files) {
		t.Fatalf("Walk files = %v, want %v", gotFiles, files)
	}
	wantDirs := []string{"/a", "/a/b", "/c"}
	sort.Strings(gotDirs)
	if fmt.Sprint(gotDirs) != fmt.Sprint(wantDirs) {
		t.Fatalf("Walk dirs = %v, want %v", gotDirs, wantDirs)
	}
}

func TestWalkSubtreeAndAbort(t *testing.T) {
	fs := newFS(t, 4<<20)
	fs.MkdirAll("/a/b")
	fs.WriteFile("/a/b/f", []byte("x"))
	fs.WriteFile("/top", []byte("y"))
	count := 0
	fs.Walk("/a", func(fi FileInfo) error {
		count++
		return nil
	})
	if count != 2 { // /a/b and /a/b/f
		t.Fatalf("subtree walk visited %d, want 2", count)
	}
	sentinel := fmt.Errorf("stop")
	err := fs.Walk("/", func(fi FileInfo) error { return sentinel })
	if err != sentinel {
		t.Fatalf("Walk abort error = %v", err)
	}
}

func TestMountRoundTrip(t *testing.T) {
	d := vdisk.New("persist", 8<<20, vdisk.DefaultClusterSize)
	fs, err := Format(d, 512)
	if err != nil {
		t.Fatal(err)
	}
	fs.MkdirAll("/etc/apt")
	fs.WriteFile("/etc/apt/sources.list", []byte("deb http://archive"))
	fs.WriteFile("/etc/hostname", []byte("vm-1"))
	fs.MkdirAll("/var/cache")

	// Serialize the disk, reload it and mount the filesystem again.
	img := d.Serialize()
	d2, err := vdisk.Deserialize("restored", img)
	if err != nil {
		t.Fatal(err)
	}
	fs2, err := Mount(d2)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := fs2.ReadFile("/etc/apt/sources.list"); string(got) != "deb http://archive" {
		t.Fatalf("file content lost: %q", got)
	}
	if fs2.NumFiles() != fs.NumFiles() || fs2.NumDirs() != fs.NumDirs() {
		t.Fatalf("counts differ after mount: %d/%d vs %d/%d",
			fs2.NumFiles(), fs2.NumDirs(), fs.NumFiles(), fs.NumDirs())
	}
	if fs2.UsedBytes() != fs.UsedBytes() {
		t.Fatalf("UsedBytes %d != %d", fs2.UsedBytes(), fs.UsedBytes())
	}
	// The remounted filesystem is fully writable.
	if err := fs2.WriteFile("/etc/motd", []byte("welcome")); err != nil {
		t.Fatal(err)
	}
}

func TestMountRejectsUnformatted(t *testing.T) {
	d := vdisk.New("raw", 1<<20, vdisk.DefaultClusterSize)
	if _, err := Mount(d); err == nil {
		t.Fatal("mounted unformatted disk")
	}
}

func TestOutOfSpace(t *testing.T) {
	d := vdisk.New("tinydisk", 64<<10, vdisk.DefaultClusterSize)
	fs, err := Format(d, 32) // tiny disk, small inode table
	if err != nil {
		t.Fatal(err)
	}
	fs.MkdirAll("/d")
	err = fs.WriteFile("/d/huge", make([]byte, 1<<20))
	if err == nil {
		t.Fatal("write beyond capacity succeeded")
	}
	// The failed write must not leak blocks permanently beyond what a
	// retry needs: a small file still fits.
	if err := fs.WriteFile("/d/small", []byte("ok")); err != nil {
		t.Fatalf("small write after ENOSPC failed: %v", err)
	}
}

func TestOutOfInodes(t *testing.T) {
	d := vdisk.New("tiny", 4<<20, vdisk.DefaultClusterSize)
	fs, err := Format(d, 4) // root + 3 more
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := fs.WriteFile(fmt.Sprintf("/f%d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.WriteFile("/f3", []byte("x")); err == nil {
		t.Fatal("exceeded inode limit")
	}
	// Freeing an inode makes room again.
	fs.Remove("/f0")
	if err := fs.WriteFile("/f3", []byte("x")); err != nil {
		t.Fatalf("write after inode free failed: %v", err)
	}
}

func TestLargeFileMultiBlock(t *testing.T) {
	fs := newFS(t, 8<<20)
	data := make([]byte, 777777) // many blocks, non-aligned tail
	rand.New(rand.NewSource(2)).Read(data)
	if err := fs.WriteFile("/big", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/big")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("large file corrupted")
	}
}

func TestFragmentedAllocation(t *testing.T) {
	fs := newFS(t, 2<<20)
	// Fill the disk with alternating files, then delete every other one to
	// fragment free space.
	var small [][]byte
	for i := 0; i < 40; i++ {
		data := bytes.Repeat([]byte{byte(i)}, 3*fs.BlockSize())
		small = append(small, data)
		if err := fs.WriteFile(fmt.Sprintf("/f%02d", i), data); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i += 2 {
		fs.Remove(fmt.Sprintf("/f%02d", i))
	}
	// A file needing several separated runs must still be writable via
	// multi-extent allocation.
	data := bytes.Repeat([]byte{0xCC}, 9*fs.BlockSize())
	if err := fs.WriteFile("/frag", data); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile("/frag")
	if !bytes.Equal(got, data) {
		t.Fatal("fragmented file corrupted")
	}
	// Remaining odd files are intact.
	if got, _ := fs.ReadFile("/f01"); !bytes.Equal(got, small[1]) {
		t.Fatal("unrelated file corrupted by fragmented write")
	}
}

func TestStatPaths(t *testing.T) {
	fs := newFS(t, 1<<20)
	fs.MkdirAll("/a")
	fs.WriteFile("/a/f", []byte("data"))
	fi, err := fs.Stat("a/f") // no leading slash
	if err != nil || fi.Size != 4 {
		t.Fatalf("Stat relative = %+v, %v", fi, err)
	}
	if _, err := fs.Stat("/missing"); err == nil {
		t.Fatal("Stat of missing path succeeded")
	}
	root, err := fs.Stat("/")
	if err != nil || !root.IsDir {
		t.Fatalf("Stat / = %+v, %v", root, err)
	}
}

// TestQuickWriteReadRemove: arbitrary file sets round-trip and removal
// restores the original used-byte count.
func TestQuickWriteReadRemove(t *testing.T) {
	err := quick.Check(func(contents [][]byte) bool {
		if len(contents) > 30 {
			contents = contents[:30]
		}
		d := vdisk.New("q", 16<<20, vdisk.DefaultClusterSize)
		fs, err := Format(d, 256)
		if err != nil {
			return false
		}
		if err := fs.MkdirAll("/data"); err != nil {
			return false
		}
		base := fs.UsedBytes()
		for i, c := range contents {
			if len(c) > 100000 {
				c = c[:100000]
			}
			if err := fs.WriteFile(fmt.Sprintf("/data/f%03d", i), c); err != nil {
				return false
			}
		}
		for i, c := range contents {
			if len(c) > 100000 {
				c = c[:100000]
			}
			got, err := fs.ReadFile(fmt.Sprintf("/data/f%03d", i))
			if err != nil || !bytes.Equal(got, c) {
				return false
			}
		}
		for i := range contents {
			if err := fs.Remove(fmt.Sprintf("/data/f%03d", i)); err != nil {
				return false
			}
		}
		// All data blocks returned; only /data's (possibly re-sized) dir
		// entries and metadata remain.
		return fs.UsedBytes() <= base
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

// TestQuickMountInvariance: after arbitrary operations, a serialize →
// deserialize → mount round trip preserves every file.
func TestQuickMountInvariance(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := vdisk.New("q", 16<<20, vdisk.DefaultClusterSize)
		fs, err := Format(d, 512)
		if err != nil {
			return false
		}
		want := map[string][]byte{}
		for i := 0; i < 50; i++ {
			dir := fmt.Sprintf("/d%d", rng.Intn(5))
			fs.MkdirAll(dir)
			p := fmt.Sprintf("%s/f%d", dir, rng.Intn(20))
			data := make([]byte, rng.Intn(20000))
			rng.Read(data)
			if rng.Intn(4) == 0 {
				fs.RemoveAll(p)
				delete(want, p)
			} else if err := fs.WriteFile(p, data); err == nil {
				want[p] = data
			}
		}
		d2, err := vdisk.Deserialize("r", d.Serialize())
		if err != nil {
			return false
		}
		fs2, err := Mount(d2)
		if err != nil {
			return false
		}
		for p, data := range want {
			got, err := fs2.ReadFile(p)
			if err != nil || !bytes.Equal(got, data) {
				return false
			}
		}
		return fs2.NumFiles() == len(want)
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteFile(b *testing.B) {
	d := vdisk.New("bench", 1<<30, vdisk.DefaultClusterSize)
	fs, err := Format(d, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	fs.MkdirAll("/bench")
	data := make([]byte, 8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fs.WriteFile(fmt.Sprintf("/bench/f%d", i), data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWalk(b *testing.B) {
	d := vdisk.New("bench", 64<<20, vdisk.DefaultClusterSize)
	fs, _ := Format(d, 4096)
	for i := 0; i < 30; i++ {
		dir := fmt.Sprintf("/dir%02d", i)
		fs.MkdirAll(dir)
		for j := 0; j < 30; j++ {
			fs.WriteFile(fmt.Sprintf("%s/f%02d", dir, j), []byte("content"))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		fs.Walk("/", func(fi FileInfo) error { n++; return nil })
	}
}
