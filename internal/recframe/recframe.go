// Package recframe is the one CRC record framing every append-only log
// in the persistence layer shares — the blob segment logs and the
// metadata WAL speak the same wire vocabulary through identical,
// jointly-tested machinery, so a fix to torn-record or checksum handling
// lands in both formats at once:
//
//	| crc32c (4, LE) | payload len n (4, LE) | kind (1) | payload (n) |
//
// The checksum covers the kind byte and the payload, so a flipped bit
// anywhere in a record (including its kind) fails verification. A record
// is the unit of framing; what the unit of *atomicity* is — a record for
// the segment logs, a marker-closed batch for the metadata WAL — is each
// log's own recovery policy.
package recframe

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// HeaderSize is crc(4) + len(4) + kind(1).
const HeaderSize = 9

// CRCTable is the Castagnoli table every persistence checksum uses (the
// record framing here, and the trailing checksums of the committed blob
// index and metadata commit images).
var CRCTable = crc32.MakeTable(crc32.Castagnoli)

// ErrTorn marks an incomplete record at a log tail: more bytes could
// have completed it, so it is the signature of a crash mid-append.
// ErrCorrupt marks a record whose bytes are all present but wrong.
var (
	ErrTorn    = errors.New("recframe: torn record")
	ErrCorrupt = errors.New("recframe: corrupt record")
)

// Append frames kind+payload into buf and returns the extended slice.
// The wire image is exactly what Parse accepts.
func Append(buf []byte, kind byte, payload []byte) []byte {
	var hdr [HeaderSize]byte
	crc := crc32.Checksum([]byte{kind}, CRCTable)
	crc = crc32.Update(crc, CRCTable, payload)
	binary.LittleEndian.PutUint32(hdr[0:4], crc)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	hdr[8] = kind
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// Parse decodes one record from the head of b without copying. It
// returns the record kind, the payload (aliasing b), and the total
// encoded size. Incomplete input yields ErrTorn; a checksum mismatch
// yields ErrCorrupt.
func Parse(b []byte) (kind byte, payload []byte, size int, err error) {
	if len(b) < HeaderSize {
		return 0, nil, 0, ErrTorn
	}
	n := binary.LittleEndian.Uint32(b[4:8])
	if uint64(len(b)-HeaderSize) < uint64(n) {
		return 0, nil, 0, ErrTorn
	}
	kind = b[8]
	payload = b[HeaderSize : HeaderSize+int(n)]
	crc := crc32.Checksum(b[8:HeaderSize+int(n)], CRCTable)
	if crc != binary.LittleEndian.Uint32(b[0:4]) {
		return 0, nil, 0, ErrCorrupt
	}
	return kind, payload, HeaderSize + int(n), nil
}

// NextValid scans b for any offset at which a whole record parses,
// returning that offset or -1. The length pre-check in Parse rejects
// almost every misaligned offset in O(1), so the scan is near-linear; a
// random byte sequence passing the CRC is a ~2^-32 event per offset, so
// a hit is overwhelming evidence of a real record.
func NextValid(b []byte) int {
	for i := 0; i+HeaderSize <= len(b); i++ {
		if _, _, _, err := Parse(b[i:]); err == nil {
			return i
		}
	}
	return -1
}
