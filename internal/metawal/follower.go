package metawal

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"expelliarmus/internal/metadb"
)

// Follower errors. ErrOutOfOrder reports input that does not extend the
// follower's current position (a stale or skipped chunk, or a snapshot
// from an older epoch); ErrTorn reports a chunk that does not end on a
// commit boundary. Both are safe to retry after refetching: neither
// mutates the follower's state.
var (
	ErrOutOfOrder = errors.New("metawal: follower input out of order")
	ErrTorn       = errors.New("metawal: torn WAL chunk")
)

// BatchHook observes one commit-marker-bounded batch as the follower
// applies it. It runs before the batch's first mutation lands; the
// returned done func (may be nil) runs after the last. This is the seam a
// repository uses to bump its cache-invalidation generations around each
// applied batch, exactly as the writer does around its own commits.
type BatchHook func(ops []metadb.Op) (done func())

// ApplyStats reports one Apply call.
type ApplyStats struct {
	// Batches and Ops count the commit batches applied and the mutations
	// they carried; Bytes is the WAL byte range consumed.
	Batches int
	Ops     int
	Bytes   int64
}

// Follower is the apply side of the metadata WAL split: it ingests a
// writer's snapshot at some epoch, then applies the writer's durable WAL
// tail in commit-marker-bounded batches at strictly advancing offsets.
// It is the exact machinery Open uses to replay a local WAL, exposed for
// state that arrives over a wire instead of from the local disk.
//
// A Follower validates everything it is fed: a chunk must start at the
// current applied offset (ErrOutOfOrder), parse completely, and end on a
// commit boundary (ErrTorn) — torn or out-of-order input is refused
// without applying anything, so the database only ever holds states the
// writer's Sync acknowledged. All methods are safe for concurrent use.
type Follower struct {
	mu      sync.Mutex
	db      *metadb.DB
	epoch   uint64
	applied int64
	batches int64
	ops     int64
}

// NewFollower returns a Follower with no state; Restart must seed it with
// a snapshot before Apply can run.
func NewFollower() *Follower { return &Follower{} }

// Restart seeds (or re-seeds) the follower from a full snapshot at the
// given epoch, discarding any current state. The applied offset resets to
// the epoch's WAL header — the writer's log for a fresh epoch starts
// empty. Re-seeding at the same epoch is allowed (a catch-up loop may
// restart after an error); an epoch below the current one is refused as
// out-of-order input. Returns the loaded database; the caller owns wiring
// it into its own structures.
func (f *Follower) Restart(epoch uint64, snapshot []byte) (*metadb.DB, error) {
	if epoch == 0 {
		return nil, fmt.Errorf("metawal: follower restart at epoch 0")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if epoch < f.epoch {
		return nil, fmt.Errorf("%w: snapshot epoch %d behind current %d", ErrOutOfOrder, epoch, f.epoch)
	}
	db, err := metadb.Load(snapshot)
	if err != nil {
		return nil, fmt.Errorf("metawal: follower snapshot: %w", err)
	}
	f.db = db
	f.epoch = epoch
	f.applied = walHeaderLen
	return db, nil
}

// RestartFrom is Restart fed from a stream of known length: the snapshot
// is read into exactly one right-sized buffer (metadb.Load needs the full
// image; the point is that nothing upstream buffers a second copy). A
// stream that ends short, or a read error, is refused without touching
// the current state.
func (f *Follower) RestartFrom(epoch uint64, src io.Reader, size int64) (*metadb.DB, error) {
	if epoch == 0 {
		return nil, fmt.Errorf("metawal: follower restart at epoch 0")
	}
	if size < 0 {
		return nil, fmt.Errorf("metawal: follower restart: negative snapshot size %d", size)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if epoch < f.epoch {
		return nil, fmt.Errorf("%w: snapshot epoch %d behind current %d", ErrOutOfOrder, epoch, f.epoch)
	}
	snapshot := make([]byte, size)
	if _, err := io.ReadFull(src, snapshot); err != nil {
		return nil, fmt.Errorf("metawal: follower snapshot stream: %w", err)
	}
	db, err := metadb.Load(snapshot)
	if err != nil {
		return nil, fmt.Errorf("metawal: follower snapshot: %w", err)
	}
	f.db = db
	f.epoch = epoch
	f.applied = walHeaderLen
	return db, nil
}

// Apply applies one chunk of the writer's durable WAL tail: the bytes
// [from, from+len(chunk)) of epoch's log. The chunk must extend the
// follower's position exactly (epoch and from must match Position) and
// must hold whole commit batches — records that parse end to end with
// every op covered by a commit marker. Validation runs before any
// mutation: a refused chunk leaves the database untouched, so the caller
// can refetch and retry. hook (optional) observes each batch as it lands.
func (f *Follower) Apply(epoch uint64, from int64, chunk []byte, hook BatchHook) (ApplyStats, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var st ApplyStats
	if f.db == nil {
		return st, fmt.Errorf("metawal: follower has no snapshot (Restart first)")
	}
	if epoch != f.epoch {
		return st, fmt.Errorf("%w: chunk epoch %d, follower at %d", ErrOutOfOrder, epoch, f.epoch)
	}
	if from != f.applied {
		return st, fmt.Errorf("%w: chunk starts at %d, follower applied to %d", ErrOutOfOrder, from, f.applied)
	}
	batches, err := parseBatches(chunk)
	if err != nil {
		return st, err
	}
	for _, batch := range batches {
		var done func()
		if hook != nil {
			done = hook(batch)
		}
		for _, op := range batch {
			applyOp(f.db, op)
		}
		if done != nil {
			done()
		}
		st.Batches++
		st.Ops += len(batch)
	}
	st.Bytes = int64(len(chunk))
	f.applied += st.Bytes
	f.batches += int64(st.Batches)
	f.ops += int64(st.Ops)
	return st, nil
}

// parseBatches splits a WAL byte range into its commit batches, refusing
// anything but whole, marker-closed batches. A record that fails to parse
// or a trailing batch missing its marker is ErrTorn (the chunk was cut
// mid-batch — refetch); a marker whose op count disagrees with the records
// before it is corruption (a crash cannot forge the CRCs that got us
// here).
func parseBatches(chunk []byte) ([][]metadb.Op, error) {
	var batches [][]metadb.Op
	var batch []metadb.Op
	buf := chunk
	off := 0
	for len(buf) > 0 {
		kind, payload, size, err := parseRecord(buf)
		if err != nil {
			return nil, fmt.Errorf("%w: offset %d: %v", ErrTorn, off, err)
		}
		if kind == recCommit {
			count, err := decodeCommitMarker(payload)
			if err != nil {
				return nil, fmt.Errorf("metawal: follower chunk offset %d: %w", off, err)
			}
			if count != len(batch) {
				return nil, fmt.Errorf("metawal: follower chunk offset %d: commit marker closes %d ops but %d are buffered", off, count, len(batch))
			}
			batches = append(batches, batch)
			batch = nil
		} else {
			op, err := decodeOp(kind, payload)
			if err != nil {
				return nil, fmt.Errorf("metawal: follower chunk offset %d: %w", off, err)
			}
			batch = append(batch, op)
		}
		buf = buf[size:]
		off += size
	}
	if len(batch) > 0 {
		return nil, fmt.Errorf("%w: %d ops past the last commit boundary", ErrTorn, len(batch))
	}
	return batches, nil
}

// Position returns the follower's current epoch and applied WAL offset —
// the exact (epoch, from) the next Apply chunk must carry, and the offset
// to request from the writer's WALReader.
func (f *Follower) Position() (epoch uint64, applied int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch, f.applied
}

// Totals returns lifetime batches and ops applied across all epochs.
func (f *Follower) Totals() (batches, ops int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.batches, f.ops
}

// DB returns the follower's current database, or nil before the first
// Restart. The pointer changes on every Restart; callers that cache it
// must re-fetch after an epoch switch.
func (f *Follower) DB() *metadb.DB {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.db
}
