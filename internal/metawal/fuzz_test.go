package metawal

// Fuzz targets for the WAL's on-disk decoders, mirroring the blob
// segment/index fuzzers: on arbitrary input they must never panic (or
// allocate proportionally to attacker-controlled counts), and any input
// they accept must survive a semantic encode/decode round trip — our own
// encoder is a fixed point. Seeds live in testdata/fuzz and via f.Add;
// CI runs a short -fuzz smoke on every PR.

import (
	"bytes"
	"testing"

	"expelliarmus/internal/metadb"
)

func FuzzWALRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add(walMagic)
	f.Add(appendOp(nil, metadb.Op{Kind: metadb.OpPut, Bucket: "masters", Key: []byte("base-1"), Value: []byte("graph bytes")}))
	f.Add(appendOp(nil, metadb.Op{Kind: metadb.OpPut, Bucket: "", Key: nil, Value: nil}))
	f.Add(appendOp(nil, metadb.Op{Kind: metadb.OpDelete, Bucket: "vmis", Key: []byte("Redis")}))
	f.Add(appendOp(nil, metadb.Op{Kind: metadb.OpCreateBucket, Bucket: "userdata"}))
	f.Add(appendOp(nil, metadb.Op{Kind: metadb.OpDropBucket, Bucket: "userdata"}))
	f.Add(appendRecord(nil, recCommit, encodeUvarint(3)))
	batch := appendOp(nil, metadb.Op{Kind: metadb.OpPut, Bucket: "b", Key: []byte("k"), Value: []byte("v")})
	batch = appendRecord(batch, recCommit, encodeUvarint(1))
	f.Add(batch)
	f.Add(batch[:len(batch)-3]) // torn tail
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, payload, size, err := parseRecord(data)
		if err != nil {
			return
		}
		if size < recHeaderSize || size > len(data) {
			t.Fatalf("accepted record with impossible size %d of %d", size, len(data))
		}
		if kind == recCommit {
			count, err := decodeCommitMarker(payload)
			if err != nil {
				return
			}
			re := appendRecord(nil, recCommit, encodeUvarint(count))
			kind2, payload2, _, err2 := parseRecord(re)
			if err2 != nil || kind2 != recCommit {
				t.Fatalf("re-encoded commit marker rejected: %v", err2)
			}
			if count2, err2 := decodeCommitMarker(payload2); err2 != nil || count2 != count {
				t.Fatalf("commit marker round trip changed count")
			}
			return
		}
		op, err := decodeOp(kind, payload)
		if err != nil {
			return
		}
		re := appendOp(nil, op)
		kind2, payload2, size2, err2 := parseRecord(re)
		if err2 != nil {
			t.Fatalf("re-encoded op record rejected: %v", err2)
		}
		op2, err2 := decodeOp(kind2, payload2)
		if err2 != nil {
			t.Fatalf("re-encoded op payload rejected: %v", err2)
		}
		if size2 != len(re) || op2.Kind != op.Kind || op2.Bucket != op.Bucket ||
			!bytes.Equal(op2.Key, op.Key) || !bytes.Equal(op2.Value, op.Value) {
			t.Fatalf("op record round trip changed value")
		}
	})
}

func FuzzCommit(f *testing.F) {
	f.Add([]byte{})
	f.Add(commitMagic)
	f.Add(encodeCommit(1, walHeaderLen))
	f.Add(encodeCommit(12345, 1<<40))
	full := encodeCommit(7, 4096)
	f.Add(full[:len(full)-2]) // torn trailer
	f.Fuzz(func(t *testing.T, data []byte) {
		epoch, walLen, err := parseCommit(data)
		if err != nil {
			return
		}
		if epoch == 0 || walLen < walHeaderLen {
			t.Fatalf("accepted a commit the encoder can never produce: epoch %d, walLen %d", epoch, walLen)
		}
		re := encodeCommit(epoch, walLen)
		epoch2, walLen2, err2 := parseCommit(re)
		if err2 != nil {
			t.Fatalf("re-encoded commit rejected: %v", err2)
		}
		if epoch2 != epoch || walLen2 != walLen {
			t.Fatalf("commit round trip changed value")
		}
	})
}
