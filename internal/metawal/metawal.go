// Package metawal is the append-only metadata write-ahead log that makes
// a disk-backed repository's Sync O(delta) on the metadata side: instead
// of rewriting the whole metadata image on every Sync (the pre-WAL
// layout), committed mutations stream into a log and Sync is an append +
// fsync + watermark commit.
//
// Layout of a repository directory (alongside the blobs/ store):
//
//	meta.snap-00000007   full metadb snapshot at the epoch's birth
//	meta.wal-00000007    append-only op log extending that snapshot
//	meta.commit          root of trust: current epoch + durable WAL length
//	meta.db              legacy pre-WAL layout, migrated on first open
//
// The snapshot+log pair is versioned by an epoch. Mutations are captured
// through the metadb journal hook (Log.Record) into an in-memory pending
// buffer — deliberately not written eagerly: a metadata record must never
// be able to become durable before the blob bytes it references, so the
// caller's Sync orders blob SyncData → Log.Sync → blob release sync, and
// everything the WAL ever holds points at durable blobs. Sync frames the
// pending ops plus one commit marker into the log, fsyncs, then commits
// the watermark; the marker makes a Sync batch the unit of atomicity, so
// recovery always lands between Syncs, never inside one.
//
// Compaction — size-triggered, periodic, or forced — rewrites the state
// as a fresh snapshot at the next epoch via internal/atomicfile, creates
// an empty log, atomically switches meta.commit, and only then removes
// the old pair (leftovers of a crash mid-compaction are swept on the
// next open). A crash anywhere leaves meta.commit pointing at exactly
// one complete pair. A Sync whose pending delta alone outweighs the full
// database also compacts — writing the snapshot is strictly cheaper than
// appending such a delta (a bulk load logs every intermediate master
// version; the snapshot keeps only the last) — so Sync cost is
// O(min(delta, repository)), never worse than the pre-WAL full rewrite.
//
// Open replays snapshot + log under the watermark oracle: any damage in
// the unacknowledged tail (at or beyond the durable watermark) is a crash
// artifact and is truncated back to the last commit boundary, while
// damage below the watermark, a CRC-valid record that does not decode, a
// commit that references a missing snapshot or log, or epoch files whose
// commit record is missing are refused as real corruption.
package metawal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"expelliarmus/internal/atomicfile"
	"expelliarmus/internal/metadb"
)

// ErrEpochGone reports that a requested WAL epoch is no longer the
// current one — a compaction switched the log to a fresh snapshot at a
// higher epoch, and the old pair is gone. A follower tailing the log must
// restart from the new epoch's snapshot.
var ErrEpochGone = errors.New("metawal: epoch no longer current")

// DefaultCompactBytes is the compaction trigger when Options leave it
// zero: a Sync that would grow the WAL beyond this rewrites the snapshot
// instead.
const DefaultCompactBytes = 8 << 20

// Options configure a metadata log.
type Options struct {
	// CompactBytes compacts (snapshot rewrite + fresh WAL) when a Sync
	// would grow the WAL beyond this size. Zero means DefaultCompactBytes.
	// Small values are useful in tests to force compaction churn.
	CompactBytes int64
	// CompactEvery, when positive, additionally compacts on every Nth
	// effective Sync (one that had something to commit) — the periodic
	// trigger for repositories whose WAL grows too slowly to hit
	// CompactBytes but whose reopen cost should stay bounded.
	CompactEvery int
}

// KillPoint names a crash-injection point inside Sync/Compact. Tests set
// Log.Kill to simulate a process dying at exactly that point; production
// code leaves it nil.
type KillPoint int

const (
	// KillBeforeAppend fires at Sync entry — in the repository protocol,
	// after blob SyncData and before any WAL write.
	KillBeforeAppend KillPoint = iota + 1
	// KillAfterAppend fires after the batch (ops + commit marker) is
	// appended and fsynced, before the watermark commit.
	KillAfterAppend
	// KillAfterCommit fires after the watermark commit — in the
	// repository protocol, before the blob release sync.
	KillAfterCommit
	// KillAfterSnapshot fires mid-compaction, after the next epoch's
	// snapshot is durably written and before its WAL exists.
	KillAfterSnapshot
	// KillAfterWALReset fires mid-compaction, after the next epoch's
	// empty WAL is durably created and before the commit switch.
	KillAfterWALReset
	// KillAfterCompactCommit fires after the compaction's commit switch,
	// before the old epoch's files are removed.
	KillAfterCompactCommit
)

// RecoveryReport describes what Open had to do beyond loading the
// committed snapshot.
type RecoveryReport struct {
	// Epoch is the committed epoch Open loaded.
	Epoch uint64
	// ReplayedOps counts mutations applied from the WAL on top of the
	// snapshot; ReplayedBatches counts the commit batches they arrived in.
	ReplayedOps     int
	ReplayedBatches int
	// Torn reports that a torn or uncommitted WAL tail was truncated away:
	// TornOffset is where the log now ends, DroppedBytes how much was
	// discarded, DroppedOps how many whole op records were in the
	// discarded suffix (they lacked their commit marker).
	Torn         bool
	TornOffset   int64
	DroppedBytes int64
	DroppedOps   int
	// LegacyMigrated reports that a pre-WAL meta.db image was loaded and
	// migrated into the epoch layout.
	LegacyMigrated bool
	// StaleFilesRemoved counts leftover snapshot/WAL files from other
	// epochs (crashed compactions) swept on open.
	StaleFilesRemoved int
}

// Log is the metadata write-ahead log of one repository directory.
// Construct with Open; the zero value is not usable. Record may be called
// concurrently (it is the metadb journal hook); Sync, Compact and Close
// must be externally serialised against mutations, which the repository's
// operation lock already guarantees.
type Log struct {
	dir  string
	opts Options
	db   *metadb.DB

	mu           sync.Mutex
	epoch        uint64
	f            *os.File // current WAL, O_APPEND
	length       int64    // current WAL length
	durable      int64    // watermark: length covered by meta.commit
	pending      []byte   // framed op records buffered since the last Sync
	pendingOps   int
	sinceCompact int // effective Syncs since the last compaction
	failure      error
	recovery     RecoveryReport

	// Kill is the crash-injection hook: when non-nil it runs at each
	// KillPoint, and a returned error aborts the operation exactly as a
	// crash at that point would (the error is sticky; tests Abandon and
	// reopen). Set it before any Sync/Compact and never while one runs.
	Kill func(KillPoint) error
}

// SyncStats reports one durable metadata commit.
type SyncStats struct {
	// Ops is the number of mutations committed (appended, or folded into
	// the snapshot when Compacted).
	Ops int
	// WALBytes is what the append path wrote: framed op records plus the
	// commit marker. Zero on a compacting or no-op sync.
	WALBytes int64
	// Compacted reports that this commit rewrote the state as a fresh
	// snapshot; SnapshotBytes is that snapshot's size.
	Compacted     bool
	SnapshotBytes int64
}

// Open creates or reopens the metadata log rooted at dir and returns it
// together with the replayed database. The caller wires the database to
// the log with db.SetJournal(log.Record) once its own setup (bucket
// creation) is done. Open does not lock dir — the repository's blob store
// flock already enforces one instance per directory.
func Open(dir string, opts Options) (*Log, *metadb.DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("metawal: open %s: %w", dir, err)
	}
	l := &Log{dir: dir, opts: opts}
	cimg, err := os.ReadFile(filepath.Join(dir, "meta.commit"))
	if os.IsNotExist(err) {
		if err := l.initFresh(); err != nil {
			return nil, nil, err
		}
		return l, l.db, nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("metawal: read %s/meta.commit: %w", dir, err)
	}
	epoch, walLen, err := parseCommit(cimg)
	if err != nil {
		// The commit is the root of trust; guessing an epoch from leftover
		// files could resurrect a half-compacted past, so refuse.
		return nil, nil, fmt.Errorf("metawal: %s/meta.commit unreadable: %w", dir, err)
	}
	l.epoch = epoch
	l.recovery.Epoch = epoch
	if err := l.loadEpoch(walLen); err != nil {
		l.Abandon()
		return nil, nil, err
	}
	l.recovery.StaleFilesRemoved = l.cleanStale(snapName(epoch), walName(epoch))
	// A leftover legacy meta.db (migration crashed between the commit and
	// its best-effort removal) is stale debris once a commit exists — and
	// a trap: were meta.commit ever lost, initFresh would re-migrate the
	// stale file instead of refusing. Sweep it here, where the commit
	// proves it obsolete.
	if os.Remove(filepath.Join(dir, "meta.db")) == nil {
		l.recovery.StaleFilesRemoved++
	}
	return l, l.db, nil
}

// initFresh initialises a directory with no commit record: a brand-new
// repository, a legacy pre-WAL layout (meta.db, migrated here), or the
// leftovers of a crash during a previous first initialisation (no commit
// ever vouched for those files, so they are swept). Epoch files a commit
// must once have vouched for — any epoch beyond 1, a WAL with records,
// a non-empty snapshot with no legacy source to re-migrate from — mean
// the root of trust itself was lost, and re-initialising would silently
// destroy the repository's metadata; that is refused instead.
func (l *Log) initFresh() error {
	db := metadb.New()
	legacy := false
	legacyPath := filepath.Join(l.dir, "meta.db")
	if img, err := os.ReadFile(legacyPath); err == nil {
		if db, err = metadb.Load(img); err != nil {
			return fmt.Errorf("metawal: load legacy %s: %w", legacyPath, err)
		}
		legacy = true
	} else if !os.IsNotExist(err) {
		return err
	}
	if err := l.refuseOrphanedEpochs(legacy); err != nil {
		return err
	}
	l.db = db
	l.epoch = 1
	l.recovery.Epoch = 1
	l.recovery.LegacyMigrated = legacy
	l.recovery.StaleFilesRemoved = l.cleanStale("", "")
	img := db.Snapshot()
	if err := atomicfile.Write(filepath.Join(l.dir, snapName(1)), img); err != nil {
		return fmt.Errorf("metawal: write initial snapshot: %w", err)
	}
	f, err := l.createWAL(1)
	if err != nil {
		return err
	}
	l.f = f
	if err := l.writeCommit(1, walHeaderLen); err != nil {
		l.Abandon()
		return err
	}
	l.length, l.durable = walHeaderLen, walHeaderLen
	if legacy {
		// Best-effort: a leftover meta.db is ignored once meta.commit
		// exists, so a crash between the commit above and this remove is
		// harmless.
		os.Remove(legacyPath)
	}
	return nil
}

// createWAL creates (truncating any leftover) the epoch's WAL file with
// its header, durably: the file content and its directory entry are both
// fsynced before any commit record may reference them. The handle is
// returned rather than adopted — first init and compaction adopt it at
// different points of their protocols.
func (l *Log) createWAL(epoch uint64) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(l.dir, walName(epoch)), os.O_RDWR|os.O_CREATE|os.O_TRUNC|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("metawal: create %s: %w", walName(epoch), err)
	}
	if _, err := f.Write(walMagic); err != nil {
		f.Close()
		return nil, fmt.Errorf("metawal: write %s header: %w", walName(epoch), err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("metawal: sync %s: %w", walName(epoch), err)
	}
	if err := atomicfile.SyncDir(l.dir); err != nil {
		f.Close()
		return nil, fmt.Errorf("metawal: persist %s directory entry: %w", walName(epoch), err)
	}
	return f, nil
}

// loadEpoch loads the committed snapshot and replays the WAL tail.
func (l *Log) loadEpoch(walLen int64) error {
	snapPath := filepath.Join(l.dir, snapName(l.epoch))
	img, err := os.ReadFile(snapPath)
	if err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("metawal: commit references missing snapshot %s", snapName(l.epoch))
		}
		return err
	}
	db, err := metadb.Load(img)
	if err != nil {
		return fmt.Errorf("metawal: snapshot %s: %w", snapName(l.epoch), err)
	}
	l.db = db

	walPath := filepath.Join(l.dir, walName(l.epoch))
	f, err := os.OpenFile(walPath, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("metawal: commit references missing WAL %s", walName(l.epoch))
		}
		return err
	}
	l.f = f
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	size := fi.Size()
	if size < walLen {
		return fmt.Errorf("metawal: %s is %d bytes, shorter than the synced watermark %d — durably committed operations are gone",
			walName(l.epoch), size, walLen)
	}
	data := make([]byte, size)
	if _, err := f.ReadAt(data, 0); err != nil {
		return fmt.Errorf("metawal: read %s: %w", walName(l.epoch), err)
	}
	if string(data[:walHeaderLen]) != string(walMagic) {
		return fmt.Errorf("metawal: %s has bad magic", walName(l.epoch))
	}
	return l.replay(data, walLen, size)
}

// replay applies the WAL's committed batches to the database. Op records
// buffer until their commit marker arrives; any damage at or beyond the
// durable watermark — torn mid-record, whole records missing their
// marker, or a partially persisted batch with intact records after the
// damage — is the signature of a crash mid-Sync and is truncated back to
// the last commit boundary, while damage below the watermark is refused
// as corruption of acknowledged history.
func (l *Log) replay(data []byte, walLen, size int64) error {
	buf := data[walHeaderLen:]
	off := walHeaderLen
	lastCommitEnd := walHeaderLen
	watermarkOnBoundary := walLen == walHeaderLen
	var batch []metadb.Op
	for len(buf) > 0 {
		kind, payload, recSize, err := parseRecord(buf)
		if err != nil {
			if off < walLen {
				// Below the durable watermark every byte was acknowledged to
				// a Sync caller; ANY damage there — torn-looking or not — is
				// real corruption of committed history, never a crash
				// artifact, and must be refused rather than truncated.
				return fmt.Errorf("metawal: %s offset %d: %w below the durable watermark %d — refusing to truncate committed data",
					walName(l.epoch), off, err, walLen)
			}
			// Damage in the unacknowledged tail is a crash artifact —
			// including a later record that still parses (a multi-page batch
			// whose pages were written back out of order before the fsync
			// completed): nothing at or beyond the watermark was ever
			// acknowledged, so rolling back to the last commit boundary is
			// exactly the rollback Sync already promises.
			break
		}
		if kind == recCommit {
			count, err := decodeCommitMarker(payload)
			if err != nil {
				return fmt.Errorf("metawal: %s offset %d: %w", walName(l.epoch), off, err)
			}
			if count != len(batch) {
				return fmt.Errorf("metawal: %s offset %d: commit marker closes %d ops but %d are buffered",
					walName(l.epoch), off, count, len(batch))
			}
			for _, op := range batch {
				applyOp(l.db, op)
			}
			l.recovery.ReplayedOps += len(batch)
			l.recovery.ReplayedBatches++
			batch = batch[:0]
			lastCommitEnd = off + int64(recSize)
			if lastCommitEnd == walLen {
				watermarkOnBoundary = true
			}
		} else {
			op, err := decodeOp(kind, payload)
			if err != nil {
				// The record's CRC passed, so these bytes are not a torn
				// write (a crash cannot forge a checksum): an undecodable
				// payload means a foreign or future format, on either side
				// of the watermark. Refuse rather than guess.
				return fmt.Errorf("metawal: %s offset %d: %w", walName(l.epoch), off, err)
			}
			batch = append(batch, op)
		}
		buf = buf[recSize:]
		off += int64(recSize)
	}
	if !watermarkOnBoundary {
		return fmt.Errorf("metawal: %s durable watermark %d does not land on a commit boundary", walName(l.epoch), walLen)
	}
	if lastCommitEnd < size {
		// Torn or uncommitted tail: a crash mid-Sync. Discard the whole
		// partial batch so recovery lands between Syncs, never inside one.
		if err := l.f.Truncate(lastCommitEnd); err != nil {
			return fmt.Errorf("metawal: truncate torn %s: %w", walName(l.epoch), err)
		}
		l.recovery.Torn = true
		l.recovery.TornOffset = lastCommitEnd
		l.recovery.DroppedBytes = size - lastCommitEnd
		l.recovery.DroppedOps = len(batch)
		size = lastCommitEnd
	}
	l.length = size
	l.durable = walLen
	return nil
}

// decodeCommitMarker validates a commit marker's payload.
func decodeCommitMarker(payload []byte) (int, error) {
	count, err := decodeUvarintAll(payload)
	if err != nil {
		return 0, fmt.Errorf("%w: bad commit marker", errCorrupt)
	}
	return int(count), nil
}

// refuseOrphanedEpochs decides whether epoch files found with no
// meta.commit are sweepable first-init leftovers or proof that a once-
// committed repository lost its root of trust (an errant rm, a partial
// backup restore, directory-entry loss). The distinction is exact:
//
//   - A crashed first initialisation can only ever leave epoch-1 files,
//     with a record-free WAL (records are appended only by Sync, which
//     requires the commit to exist) and an empty snapshot (or, mid-
//     migration, with the legacy meta.db still present as the source of
//     truth — removed strictly after the commit lands).
//   - Anything else — a higher epoch, WAL records, a non-empty snapshot
//     with no legacy file to re-migrate — can only exist after a commit
//     was durably written, so its absence is data loss, not a fresh
//     directory, and silently re-initialising would destroy the
//     repository's metadata.
func (l *Log) refuseOrphanedEpochs(legacy bool) error {
	refuse := func(evidence string) error {
		return fmt.Errorf("metawal: %s exists but %s/meta.commit is missing — the root of trust of a committed repository is gone; restore meta.commit from backup, or delete the meta.snap-*/meta.wal-* files if this directory is really meant to start empty", evidence, l.dir)
	}
	des, err := os.ReadDir(l.dir)
	if err != nil {
		return err
	}
	for _, de := range des {
		name := de.Name()
		var epoch uint64
		switch {
		case parseEpochName(name, "meta.snap-%08d", &epoch):
			if epoch != 1 {
				return refuse(name)
			}
			if legacy {
				continue // mid-migration leftover; meta.db is the source
			}
			img, err := os.ReadFile(filepath.Join(l.dir, name))
			if err != nil {
				return err
			}
			snap, err := metadb.Load(img)
			if err != nil || len(snap.Buckets()) > 0 {
				return refuse(name + " (non-empty snapshot)")
			}
		case parseEpochName(name, "meta.wal-%08d", &epoch):
			if epoch != 1 {
				return refuse(name)
			}
			if legacy {
				continue
			}
			fi, err := de.Info()
			if err != nil {
				return err
			}
			if fi.Size() > walHeaderLen {
				return refuse(name + " (WAL holds records)")
			}
		}
	}
	return nil
}

// parseEpochName matches an exact epoch-numbered file name.
func parseEpochName(name, format string, epoch *uint64) bool {
	if _, err := fmt.Sscanf(name, format, epoch); err != nil {
		return false
	}
	// Sscanf tolerates trailing characters; require the exact round trip
	// so meta.snap-00000001.tmp is not mistaken for the snapshot itself.
	return name == fmt.Sprintf(format, *epoch)
}

// cleanStale removes snapshot/WAL files (and their atomicfile leftovers)
// that the commit record does not vouch for — inert debris of a crashed
// compaction or first init. Returns how many files were removed.
func (l *Log) cleanStale(keepSnap, keepWAL string) int {
	des, err := os.ReadDir(l.dir)
	if err != nil {
		return 0
	}
	removed := 0
	for _, de := range des {
		name := de.Name()
		if !strings.HasPrefix(name, "meta.snap-") && !strings.HasPrefix(name, "meta.wal-") {
			continue
		}
		if name == keepSnap || name == keepWAL {
			continue
		}
		if os.Remove(filepath.Join(l.dir, name)) == nil {
			removed++
		}
	}
	return removed
}

// Record is the metadb journal hook: it frames the op into the pending
// buffer, to be committed by the next Sync. Safe for concurrent use. The
// caller holds its bucket lock, so framing (varint encoding + CRC over
// the whole value) happens before taking the log mutex — writers on
// different buckets contend only on the final buffer append, not on each
// other's encoding work.
func (l *Log) Record(op metadb.Op) {
	rec := appendOp(nil, op)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failure != nil {
		// The log is poisoned; Sync will refuse anyway, so buffering more
		// ops would only grow memory for a store that can never commit.
		return
	}
	l.pending = append(l.pending, rec...)
	l.pendingOps++
}

// Pending returns the number of ops buffered for the next Sync.
func (l *Log) Pending() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pendingOps
}

// Epoch returns the current snapshot epoch.
func (l *Log) Epoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch
}

// Bytes returns the current WAL length; DurableBytes how far the
// committed watermark extends.
func (l *Log) Bytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.length
}

// DurableBytes returns the committed watermark.
func (l *Log) DurableBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// Recovery returns what Open had to recover.
func (l *Log) Recovery() RecoveryReport { return l.recovery }

// Err returns the log's sticky failure, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failure
}

// fail records the first failure; the log refuses further commits.
func (l *Log) fail(err error) error {
	if l.failure == nil {
		l.failure = err
	}
	return err
}

// kill runs the crash-injection hook at point p.
func (l *Log) kill(p KillPoint) error {
	if l.Kill == nil {
		return nil
	}
	if err := l.Kill(p); err != nil {
		return l.fail(err)
	}
	return nil
}

// Sync durably commits all ops recorded since the previous Sync: append
// the batch plus its commit marker, fsync, then atomically advance the
// watermark. When the WAL would outgrow Options.CompactBytes (or the
// periodic trigger fires), the commit compacts instead. In the
// repository's two-phase protocol this runs strictly after blob SyncData,
// so every op the WAL ever holds references durable blob bytes.
func (l *Log) Sync() (SyncStats, error) { return l.sync(false) }

// Compact forces the commit to rewrite the state as a fresh snapshot at
// the next epoch with an empty WAL, regardless of size. Pending ops are
// folded into the snapshot.
func (l *Log) Compact() (SyncStats, error) { return l.sync(true) }

func (l *Log) sync(force bool) (SyncStats, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var st SyncStats
	if l.failure != nil {
		return st, l.failure
	}
	if err := l.kill(KillBeforeAppend); err != nil {
		return st, err
	}
	if !force && l.pendingOps == 0 && l.durable == l.length {
		// Nothing to commit and the watermark is current: the identical
		// commit record does not need to be re-written and re-fsynced.
		return st, nil
	}
	l.sinceCompact++
	compactBytes := l.opts.CompactBytes
	if compactBytes <= 0 {
		compactBytes = DefaultCompactBytes
	}
	if force ||
		l.length+int64(len(l.pending)) > compactBytes ||
		int64(len(l.pending)) > l.db.SizeBytes() ||
		(l.opts.CompactEvery > 0 && l.sinceCompact >= l.opts.CompactEvery) {
		return l.compactLocked(st)
	}
	var batch []byte
	if l.pendingOps > 0 {
		batch = appendRecord(l.pending, recCommit, encodeUvarint(l.pendingOps))
		if _, err := l.f.Write(batch); err != nil {
			return st, l.fail(fmt.Errorf("metawal: append to %s: %w", walName(l.epoch), err))
		}
		l.length += int64(len(batch))
	}
	if l.length > l.durable {
		if err := l.f.Sync(); err != nil {
			return st, l.fail(fmt.Errorf("metawal: sync %s: %w", walName(l.epoch), err))
		}
	}
	if err := l.kill(KillAfterAppend); err != nil {
		return st, err
	}
	if err := l.writeCommit(l.epoch, l.length); err != nil {
		return st, err
	}
	if err := l.kill(KillAfterCommit); err != nil {
		return st, err
	}
	st.Ops = l.pendingOps
	st.WALBytes = int64(len(batch))
	l.durable = l.length
	l.pending, l.pendingOps = nil, 0
	return st, nil
}

// compactLocked rewrites the state as a fresh snapshot at the next epoch.
// Ordering: the new snapshot and the new empty WAL are durable before the
// commit switches to them, and the old pair is removed only after the
// switch — every crash window reopens to exactly one complete epoch.
func (l *Log) compactLocked(st SyncStats) (SyncStats, error) {
	img := l.db.Snapshot()
	next := l.epoch + 1
	if err := atomicfile.Write(filepath.Join(l.dir, snapName(next)), img); err != nil {
		return st, l.fail(fmt.Errorf("metawal: write snapshot %s: %w", snapName(next), err))
	}
	if err := l.kill(KillAfterSnapshot); err != nil {
		return st, err
	}
	f, err := l.createWAL(next)
	if err != nil {
		return st, l.fail(err)
	}
	if err := l.kill(KillAfterWALReset); err != nil {
		f.Close()
		return st, err
	}
	if err := l.writeCommit(next, walHeaderLen); err != nil {
		f.Close()
		return st, err
	}
	if err := l.kill(KillAfterCompactCommit); err != nil {
		f.Close()
		return st, err
	}
	// The switch is durable; adopt the new epoch and sweep the old pair
	// (best-effort — a leftover is inert and cleaned on the next open).
	l.f.Close()
	os.Remove(filepath.Join(l.dir, snapName(l.epoch)))
	os.Remove(filepath.Join(l.dir, walName(l.epoch)))
	l.f = f
	l.epoch = next
	l.length, l.durable = walHeaderLen, walHeaderLen
	st.Ops = l.pendingOps
	st.Compacted = true
	st.SnapshotBytes = int64(len(img))
	l.pending, l.pendingOps = nil, 0
	l.sinceCompact = 0
	return st, nil
}

// writeCommit atomically replaces meta.commit.
func (l *Log) writeCommit(epoch uint64, walLen int64) error {
	if err := atomicfile.Write(filepath.Join(l.dir, "meta.commit"), encodeCommit(epoch, walLen)); err != nil {
		return l.fail(fmt.Errorf("metawal: commit watermark: %w", err))
	}
	return nil
}

// CommitState returns the current epoch and its durable watermark as one
// consistent pair — the writer-side coordinates a follower polls to
// decide whether to fetch more WAL tail or restart from a new snapshot.
func (l *Log) CommitState() (epoch uint64, durable int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch, l.durable
}

// SnapshotReader opens the current epoch's snapshot for streaming and
// returns the epoch it belongs to alongside the exact byte size. Snapshot
// files are written once at their epoch's birth and never modified, so
// the stream stays valid after the lock is released — even across a
// concurrent compaction, which unlinks the file but cannot disturb an
// open handle. The caller must Close the reader.
func (l *Log) SnapshotReader() (epoch uint64, rc io.ReadCloser, size int64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	f, err := os.Open(filepath.Join(l.dir, snapName(l.epoch)))
	if err != nil {
		return 0, nil, 0, fmt.Errorf("metawal: open snapshot %s: %w", snapName(l.epoch), err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return 0, nil, 0, fmt.Errorf("metawal: stat %s: %w", snapName(l.epoch), err)
	}
	return l.epoch, f, fi.Size(), nil
}

// WALReader opens the durable WAL tail [from, DurableBytes) of the given
// epoch for streaming, returning the reader and the byte count it will
// deliver. The range is stable after the lock is released: within an
// epoch the WAL is append-only past open-time recovery, nothing at or
// below the durable watermark is ever rewritten, and a compaction that
// retires the epoch unlinks the file without disturbing the open handle.
// Requesting an epoch the log has compacted away returns ErrEpochGone
// (restart from SnapshotReader); an offset outside [header, durable] is
// the caller's bug. The caller must Close the reader.
func (l *Log) WALReader(epoch uint64, from int64) (io.ReadCloser, int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if epoch != l.epoch {
		return nil, 0, fmt.Errorf("%w: epoch %d requested, current is %d", ErrEpochGone, epoch, l.epoch)
	}
	if from < walHeaderLen || from > l.durable {
		return nil, 0, fmt.Errorf("metawal: WAL offset %d outside the durable range [%d, %d]", from, walHeaderLen, l.durable)
	}
	f, err := os.Open(filepath.Join(l.dir, walName(epoch)))
	if err != nil {
		return nil, 0, fmt.Errorf("metawal: open %s: %w", walName(epoch), err)
	}
	n := l.durable - from
	return &sectionReadCloser{r: io.NewSectionReader(f, from, n), f: f}, n, nil
}

// sectionReadCloser couples a SectionReader over the durable WAL range
// with the file handle backing it.
type sectionReadCloser struct {
	r *io.SectionReader
	f *os.File
}

func (s *sectionReadCloser) Read(p []byte) (int, error) { return s.r.Read(p) }
func (s *sectionReadCloser) Close() error               { return s.f.Close() }

// Close commits any pending ops (a no-op when the caller already synced)
// and releases the WAL file handle. The log is unusable after.
func (l *Log) Close() error {
	_, err := l.sync(false)
	if aerr := l.Abandon(); err == nil {
		err = aerr
	}
	return err
}

// Abandon releases the file handle WITHOUT committing anything — the log
// simply stops, exactly as a crashed process would. Crash-recovery tests
// reopen the directory afterwards; production code wants Close.
func (l *Log) Abandon() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
