package metawal

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// ship reads the writer's current snapshot and durable WAL tail and
// feeds both to a fresh follower, returning it.
func ship(t *testing.T, l *Log) *Follower {
	t.Helper()
	f := NewFollower()
	catchUp(t, l, f)
	return f
}

// catchUp advances f to l's durable position, restarting from the
// snapshot when the epochs diverge — the in-process mirror of the
// replica loop.
func catchUp(t *testing.T, l *Log, f *Follower) {
	t.Helper()
	for {
		epoch, durable := l.CommitState()
		fe, applied := f.Position()
		if fe != epoch {
			snapEpoch, rc, size, err := l.SnapshotReader()
			if err != nil {
				t.Fatalf("SnapshotReader: %v", err)
			}
			snap, err := io.ReadAll(rc)
			rc.Close()
			if err != nil || int64(len(snap)) != size {
				t.Fatalf("read snapshot: %v (%d of %d bytes)", err, len(snap), size)
			}
			if _, err := f.Restart(snapEpoch, snap); err != nil {
				t.Fatalf("Restart(epoch %d): %v", snapEpoch, err)
			}
			continue
		}
		if applied >= durable {
			return
		}
		rc, n, err := l.WALReader(epoch, applied)
		if err != nil {
			t.Fatalf("WALReader(%d, %d): %v", epoch, applied, err)
		}
		chunk, err := io.ReadAll(rc)
		rc.Close()
		if err != nil || int64(len(chunk)) != n {
			t.Fatalf("read WAL tail: %v (%d of %d bytes)", err, len(chunk), n)
		}
		if _, err := f.Apply(epoch, applied, chunk, nil); err != nil {
			t.Fatalf("Apply(%d, %d, %d bytes): %v", epoch, applied, len(chunk), err)
		}
	}
}

// TestFollowerRoundTrip pins the core shipping contract: a follower fed
// the snapshot plus the durable WAL tail reproduces the writer's
// database byte for byte, across multiple sync batches.
func TestFollowerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, db := openLog(t, dir, Options{})
	defer l.Abandon()
	wire(db, l)

	putN(db, "pkgs", 0, 10)
	mustSync(t, l)
	f := ship(t, l)
	if !bytes.Equal(f.DB().Snapshot(), db.Snapshot()) {
		t.Fatalf("follower snapshot differs after initial ship")
	}

	// More batches, applied incrementally without re-shipping the snapshot.
	putN(db, "pkgs", 10, 7)
	mustSync(t, l)
	db.CreateBucket("pkgs").Delete([]byte("key-0002"))
	putN(db, "other", 0, 3)
	mustSync(t, l)
	catchUp(t, l, f)
	if !bytes.Equal(f.DB().Snapshot(), db.Snapshot()) {
		t.Fatalf("follower snapshot differs after incremental catch-up")
	}
	// The epoch-1 snapshot is the empty epoch-creation image, so the
	// initial ship applied one batch via the WAL, plus the two syncs
	// above: three applied batches in total.
	if batches, ops := f.Totals(); batches != 3 || ops == 0 {
		t.Fatalf("Totals = %d batches / %d ops, want 3", batches, ops)
	}
}

// TestFollowerRefusesOutOfOrder pins the ordering contract: a chunk not
// starting at the applied watermark is refused with ErrOutOfOrder and
// mutates nothing.
func TestFollowerRefusesOutOfOrder(t *testing.T) {
	dir := t.TempDir()
	l, db := openLog(t, dir, Options{})
	defer l.Abandon()
	wire(db, l)
	putN(db, "pkgs", 0, 5)
	mustSync(t, l)
	f := ship(t, l)

	putN(db, "pkgs", 5, 5)
	mustSync(t, l)
	epoch, applied := f.Position()
	rc, _, err := l.WALReader(epoch, applied)
	if err != nil {
		t.Fatalf("WALReader: %v", err)
	}
	chunk, _ := io.ReadAll(rc)
	rc.Close()

	want := f.DB().Snapshot()
	if _, err := f.Apply(epoch, applied+1, chunk, nil); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("Apply at wrong offset: err = %v, want ErrOutOfOrder", err)
	}
	if _, err := f.Apply(epoch+1, applied, chunk, nil); err == nil {
		t.Fatalf("Apply at wrong epoch succeeded")
	}
	if !bytes.Equal(f.DB().Snapshot(), want) {
		t.Fatalf("refused apply mutated the follower")
	}
	// The correct chunk still applies cleanly afterwards.
	if _, err := f.Apply(epoch, applied, chunk, nil); err != nil {
		t.Fatalf("Apply after refusals: %v", err)
	}
	if !bytes.Equal(f.DB().Snapshot(), db.Snapshot()) {
		t.Fatalf("follower snapshot differs after recovery from refusals")
	}
}

// TestFollowerRefusesTornChunk pins all-or-nothing application: a chunk
// cut anywhere — mid-record or mid-batch at a record boundary — is
// refused with ErrTorn before any op is applied.
func TestFollowerRefusesTornChunk(t *testing.T) {
	dir := t.TempDir()
	l, db := openLog(t, dir, Options{})
	defer l.Abandon()
	wire(db, l)
	putN(db, "pkgs", 0, 3)
	mustSync(t, l)
	f := ship(t, l)

	putN(db, "pkgs", 3, 3)
	mustSync(t, l)
	epoch, applied := f.Position()
	rc, _, err := l.WALReader(epoch, applied)
	if err != nil {
		t.Fatalf("WALReader: %v", err)
	}
	chunk, _ := io.ReadAll(rc)
	rc.Close()

	want := f.DB().Snapshot()
	for _, cut := range []int{1, len(chunk) / 2, len(chunk) - 1} {
		if _, err := f.Apply(epoch, applied, chunk[:cut], nil); !errors.Is(err, ErrTorn) {
			t.Fatalf("Apply of %d-byte torn prefix: err = %v, want ErrTorn", cut, err)
		}
	}
	if !bytes.Equal(f.DB().Snapshot(), want) {
		t.Fatalf("torn applies mutated the follower")
	}
}

// TestFollowerEpochSwitch pins the compaction path: after the writer
// compacts, the old epoch's WAL is gone (ErrEpochGone), and restarting
// from the new snapshot converges the follower again.
func TestFollowerEpochSwitch(t *testing.T) {
	dir := t.TempDir()
	l, db := openLog(t, dir, Options{})
	defer l.Abandon()
	wire(db, l)
	putN(db, "pkgs", 0, 8)
	mustSync(t, l)
	f := ship(t, l)
	oldEpoch, _ := f.Position()

	putN(db, "pkgs", 8, 4)
	if _, err := l.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if _, _, err := l.WALReader(oldEpoch, walHeaderLen); !errors.Is(err, ErrEpochGone) {
		t.Fatalf("WALReader(old epoch): err = %v, want ErrEpochGone", err)
	}
	catchUp(t, l, f)
	newEpoch, _ := f.Position()
	if newEpoch <= oldEpoch {
		t.Fatalf("epoch did not advance: %d -> %d", oldEpoch, newEpoch)
	}
	if !bytes.Equal(f.DB().Snapshot(), db.Snapshot()) {
		t.Fatalf("follower snapshot differs after epoch switch")
	}
	// Restart must refuse going backwards.
	if _, err := f.Restart(oldEpoch, db.Snapshot()); err == nil {
		t.Fatalf("Restart to an older epoch succeeded")
	}
}

// TestWALReaderStableAcrossCompaction pins the reader-stability
// guarantee: a WAL tail reader opened before a compaction keeps serving
// its epoch's bytes after the writer switched epochs (the unlinked file
// stays readable through the open descriptor).
func TestWALReaderStableAcrossCompaction(t *testing.T) {
	dir := t.TempDir()
	l, db := openLog(t, dir, Options{})
	defer l.Abandon()
	wire(db, l)
	putN(db, "pkgs", 0, 6)
	mustSync(t, l)

	epoch, durable := l.CommitState()
	rc, n, err := l.WALReader(epoch, walHeaderLen)
	if err != nil {
		t.Fatalf("WALReader: %v", err)
	}
	defer rc.Close()
	if n != durable-walHeaderLen {
		t.Fatalf("WALReader length %d, want %d", n, durable-walHeaderLen)
	}

	putN(db, "pkgs", 6, 2)
	if _, err := l.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	chunk, err := io.ReadAll(rc)
	if err != nil || int64(len(chunk)) != n {
		t.Fatalf("reading retired epoch: %v (%d of %d bytes)", err, len(chunk), n)
	}
	// The bytes are the real committed tail: a fresh follower accepts them.
	f := NewFollower()
	snapEpoch, src, size, err := l.SnapshotReader()
	if err != nil {
		t.Fatalf("SnapshotReader: %v", err)
	}
	snap, _ := io.ReadAll(src)
	src.Close()
	if int64(len(snap)) != size {
		t.Fatalf("snapshot short read")
	}
	if _, err := f.Restart(snapEpoch, snap); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	if _, err := f.Apply(epoch, walHeaderLen, chunk, nil); err == nil {
		t.Fatalf("stale-epoch chunk applied to a newer follower")
	}
}
