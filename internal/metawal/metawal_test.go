package metawal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"expelliarmus/internal/metadb"
)

// openLog opens a log, failing the test on error.
func openLog(t *testing.T, dir string, opts Options) (*Log, *metadb.DB) {
	t.Helper()
	l, db, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, db
}

// wire connects db mutations to the log, as vmirepo does.
func wire(db *metadb.DB, l *Log) { db.SetJournal(l.Record) }

// putN writes n keys into bucket b of db.
func putN(db *metadb.DB, bucket string, start, n int) {
	b := db.CreateBucket(bucket)
	for i := start; i < start+n; i++ {
		b.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("value-%04d", i)))
	}
}

// mustSync syncs, failing the test on error.
func mustSync(t *testing.T, l *Log) SyncStats {
	t.Helper()
	st, err := l.Sync()
	if err != nil {
		t.Fatalf("Sync: %v", err)
	}
	return st
}

// reopenSnap closes nothing and reopens the directory, returning the
// replayed database's snapshot for equivalence checks.
func reopenSnap(t *testing.T, dir string) ([]byte, RecoveryReport) {
	t.Helper()
	l, db := openLog(t, dir, Options{})
	defer l.Abandon()
	return db.Snapshot(), l.Recovery()
}

// TestRoundTrip pins the basic contract: mutations synced through the
// WAL reopen to a byte-identical snapshot, with batches replayed.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, db := openLog(t, dir, Options{})
	wire(db, l)
	putN(db, "pkgs", 0, 10)
	st := mustSync(t, l)
	if st.Ops != 11 { // 10 puts + 1 bucket creation
		t.Fatalf("first sync committed %d ops, want 11", st.Ops)
	}
	putN(db, "pkgs", 10, 5)
	db.CreateBucket("pkgs").Delete([]byte("key-0003"))
	mustSync(t, l)
	want := db.Snapshot()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	got, rec := reopenSnap(t, dir)
	if !bytes.Equal(got, want) {
		t.Fatalf("reopened snapshot differs: %d vs %d bytes", len(got), len(want))
	}
	if rec.ReplayedBatches != 2 || rec.ReplayedOps != 17 || rec.Torn {
		t.Fatalf("recovery = %+v, want 2 clean batches of 17 ops", rec)
	}
}

// TestNoOpSyncSkipsCommit pins that a Sync with nothing to commit writes
// nothing (no WAL growth, no watermark churn).
func TestNoOpSyncSkipsCommit(t *testing.T) {
	dir := t.TempDir()
	l, db := openLog(t, dir, Options{})
	wire(db, l)
	putN(db, "b", 0, 3)
	mustSync(t, l)
	lenBefore := l.Bytes()
	st := mustSync(t, l)
	if st.Ops != 0 || st.WALBytes != 0 || st.Compacted {
		t.Fatalf("no-op sync committed something: %+v", st)
	}
	if l.Bytes() != lenBefore {
		t.Fatalf("no-op sync grew the WAL")
	}
	l.Close()
}

// TestUnsyncedOpsLostOnCrash pins the buffering contract: ops recorded
// but never synced die with the process — the safe direction, because
// their blobs may not be durable either.
func TestUnsyncedOpsLostOnCrash(t *testing.T) {
	dir := t.TempDir()
	l, db := openLog(t, dir, Options{})
	wire(db, l)
	putN(db, "b", 0, 4)
	mustSync(t, l)
	want := db.Snapshot()
	putN(db, "b", 4, 4) // never synced
	if l.Pending() == 0 {
		t.Fatal("ops not buffered")
	}
	l.Abandon() // crash

	got, rec := reopenSnap(t, dir)
	if !bytes.Equal(got, want) {
		t.Fatalf("crash did not land on the last synced state")
	}
	if rec.Torn {
		t.Fatalf("clean crash reported a tear: %+v", rec)
	}
}

// TestKillAfterAppendReplaysBatch crashes between the batch fsync and
// the watermark commit: the batch is whole and marked on disk, so replay
// applies it — the log retained the operations.
func TestKillAfterAppendReplaysBatch(t *testing.T) {
	dir := t.TempDir()
	l, db := openLog(t, dir, Options{})
	wire(db, l)
	putN(db, "b", 0, 3)
	mustSync(t, l)
	putN(db, "b", 3, 3)
	want := db.Snapshot()
	l.Kill = func(p KillPoint) error {
		if p == KillAfterAppend {
			return fmt.Errorf("injected crash")
		}
		return nil
	}
	if _, err := l.Sync(); err == nil {
		t.Fatal("killed sync reported success")
	}
	l.Abandon()

	got, rec := reopenSnap(t, dir)
	if !bytes.Equal(got, want) {
		t.Fatalf("fsynced batch beyond the watermark not replayed")
	}
	if rec.Torn {
		t.Fatalf("whole marked batch reported torn: %+v", rec)
	}
	// The watermark lags the replayed batch; the next sync must be able
	// to advance it.
	l2, db2 := openLog(t, dir, Options{})
	wire(db2, l2)
	if l2.DurableBytes() >= l2.Bytes() {
		t.Fatalf("watermark not behind the replayed tail: durable %d, len %d", l2.DurableBytes(), l2.Bytes())
	}
	if _, err := l2.Sync(); err != nil {
		t.Fatalf("watermark-advancing sync: %v", err)
	}
	if l2.DurableBytes() != l2.Bytes() {
		t.Fatalf("sync did not advance the watermark")
	}
	l2.Close()
}

// TestTornBatchTruncatedWhole tears the last batch mid-record: recovery
// must discard the WHOLE batch (its commit marker never landed), landing
// exactly on the previous synced state — never inside a Sync.
func TestTornBatchTruncatedWhole(t *testing.T) {
	dir := t.TempDir()
	l, db := openLog(t, dir, Options{})
	wire(db, l)
	putN(db, "b", 0, 3)
	mustSync(t, l)
	want := db.Snapshot()
	tail := l.Bytes()
	putN(db, "b", 3, 3)
	l.Kill = func(p KillPoint) error {
		if p == KillAfterAppend {
			return fmt.Errorf("injected crash")
		}
		return nil
	}
	l.Sync()
	l.Abandon()
	// The crash happened mid-append: cut the appended batch in half.
	walPath := filepath.Join(dir, walName(1))
	fi, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	cut := tail + (fi.Size()-tail)/2
	if err := os.Truncate(walPath, cut); err != nil {
		t.Fatal(err)
	}

	got, rec := reopenSnap(t, dir)
	if !bytes.Equal(got, want) {
		t.Fatalf("torn batch partially applied")
	}
	if !rec.Torn || rec.TornOffset != tail || rec.DroppedBytes != cut-tail {
		t.Fatalf("tear geometry = %+v, want truncation back to %d", rec, tail)
	}
	if fi, _ := os.Stat(walPath); fi.Size() != tail {
		t.Fatalf("WAL not truncated to the last committed batch")
	}
}

// TestWholeUncommittedRecordsDropped appends valid op records with no
// commit marker (a crash after some records hit disk but before the
// marker): they must be dropped and truncated away, not applied.
func TestWholeUncommittedRecordsDropped(t *testing.T) {
	dir := t.TempDir()
	l, db := openLog(t, dir, Options{})
	wire(db, l)
	putN(db, "b", 0, 2)
	mustSync(t, l)
	want := db.Snapshot()
	tail := l.Bytes()
	l.Abandon()

	f, err := os.OpenFile(filepath.Join(dir, walName(1)), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	rec := appendOp(nil, metadb.Op{Kind: metadb.OpPut, Bucket: "b", Key: []byte("ghost"), Value: []byte("x")})
	if _, err := f.Write(rec); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, r := reopenSnap(t, dir)
	if !bytes.Equal(got, want) {
		t.Fatalf("uncommitted record applied")
	}
	if !r.Torn || r.DroppedOps != 1 || r.TornOffset != tail {
		t.Fatalf("recovery = %+v, want 1 dropped op truncated back to %d", r, tail)
	}
}

// TestCorruptionBelowWatermarkRefused flips a bit inside a synced batch
// at the very tail: with no valid record after it this would look like a
// tear, but the watermark proves the bytes were durably committed, so
// Open must refuse rather than silently truncate committed history.
func TestCorruptionBelowWatermarkRefused(t *testing.T) {
	dir := t.TempDir()
	l, db := openLog(t, dir, Options{})
	wire(db, l)
	putN(db, "b", 0, 3)
	mustSync(t, l)
	l.Abandon()

	walPath := filepath.Join(dir, walName(1))
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x40
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "watermark") {
		t.Fatalf("damage below the watermark not refused: %v", err)
	}
}

// TestCorruptionAmidTailRefused flips a bit in a committed (below-
// watermark) record that has a valid record after it: real corruption of
// acknowledged data, refused via the watermark oracle.
func TestCorruptionAmidTailRefused(t *testing.T) {
	dir := t.TempDir()
	l, db := openLog(t, dir, Options{})
	wire(db, l)
	b := db.CreateBucket("b")
	b.Put([]byte("first"), []byte("record gets damaged"))
	b.Put([]byte("second"), []byte("record stays whole"))
	mustSync(t, l)
	l.Abandon()

	walPath := filepath.Join(dir, walName(1))
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Damage the first op record's payload (well before the later ones).
	data[walHeaderLen+recHeaderSize+2] ^= 0x20
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "refusing") {
		t.Fatalf("non-tail corruption not refused: %v", err)
	}
}

// TestDamageAboveWatermarkTruncatesDespiteValidTail pins the watermark
// oracle's other half: damage in the UNACKNOWLEDGED tail is a crash
// artifact even when a valid record follows it (a multi-page batch whose
// pages were written back out of order before the fsync completed), so
// recovery truncates back to the last commit boundary instead of
// refusing to open.
func TestDamageAboveWatermarkTruncatesDespiteValidTail(t *testing.T) {
	dir := t.TempDir()
	l, db := openLog(t, dir, Options{})
	wire(db, l)
	putN(db, "b", 0, 3)
	mustSync(t, l)
	want := db.Snapshot()
	tail := l.Bytes()
	// A batch lands beyond the watermark (crash between fsync and commit).
	putN(db, "b", 3, 4)
	l.Kill = func(p KillPoint) error {
		if p == KillAfterAppend {
			return fmt.Errorf("injected crash")
		}
		return nil
	}
	l.Sync()
	l.Abandon()
	// Damage an EARLY record of that batch, leaving later records (and
	// the commit marker) intact — the out-of-order-writeback shape.
	walPath := filepath.Join(dir, walName(1))
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[tail+recHeaderSize+1] ^= 0x10
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	got, rec := reopenSnap(t, dir)
	if !bytes.Equal(got, want) {
		t.Fatalf("recovery did not roll back to the last synced state")
	}
	if !rec.Torn || rec.TornOffset != tail {
		t.Fatalf("recovery = %+v, want truncation back to the watermark %d", rec, tail)
	}
}

// TestMissingCommitWithEpochFilesRefused removes meta.commit from a
// committed repository: the remaining epoch files prove a commit once
// existed, so Open must refuse rather than silently re-initialise an
// empty repository over recoverable metadata — at epoch 1 (a WAL holding
// records) and after a compaction (a higher epoch).
func TestMissingCommitWithEpochFilesRefused(t *testing.T) {
	t.Run("epoch1-wal-records", func(t *testing.T) {
		dir := t.TempDir()
		l, db := openLog(t, dir, Options{})
		wire(db, l)
		putN(db, "b", 0, 3)
		mustSync(t, l)
		l.Close()
		if err := os.Remove(filepath.Join(dir, "meta.commit")); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "root of trust") {
			t.Fatalf("lost commit not refused: %v", err)
		}
	})
	t.Run("compacted-epoch", func(t *testing.T) {
		dir := t.TempDir()
		l, db := openLog(t, dir, Options{})
		wire(db, l)
		putN(db, "b", 0, 3)
		if _, err := l.Compact(); err != nil {
			t.Fatal(err)
		}
		l.Close()
		if err := os.Remove(filepath.Join(dir, "meta.commit")); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "root of trust") {
			t.Fatalf("lost commit after compaction not refused: %v", err)
		}
	})
}

// TestCrashedFirstInitSweptAndReinitialised pins the benign side of the
// missing-commit rule: a crash during the very first initialisation
// leaves an empty epoch-1 snapshot (and possibly a record-free WAL) with
// no commit — provably worthless, so the next open sweeps them and
// starts fresh instead of refusing.
func TestCrashedFirstInitSweptAndReinitialised(t *testing.T) {
	dir := t.TempDir()
	empty := metadb.New().Snapshot()
	if err := os.WriteFile(filepath.Join(dir, snapName(1)), empty, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walName(1)), walMagic, 0o644); err != nil {
		t.Fatal(err)
	}
	l, db := openLog(t, dir, Options{})
	defer l.Close()
	wire(db, l)
	putN(db, "b", 0, 2)
	mustSync(t, l)
	if l.Recovery().StaleFilesRemoved == 0 {
		t.Fatalf("crashed-init leftovers not swept: %+v", l.Recovery())
	}
}

// TestMissingSnapshotRefused deletes the snapshot the commit references.
func TestMissingSnapshotRefused(t *testing.T) {
	dir := t.TempDir()
	l, db := openLog(t, dir, Options{})
	wire(db, l)
	putN(db, "b", 0, 2)
	mustSync(t, l)
	l.Close()
	if err := os.Remove(filepath.Join(dir, snapName(1))); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "missing snapshot") {
		t.Fatalf("missing snapshot not refused: %v", err)
	}
}

// TestMissingWALRefused deletes the WAL the commit references.
func TestMissingWALRefused(t *testing.T) {
	dir := t.TempDir()
	l, db := openLog(t, dir, Options{})
	wire(db, l)
	putN(db, "b", 0, 2)
	mustSync(t, l)
	l.Close()
	if err := os.Remove(filepath.Join(dir, walName(1))); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "missing WAL") {
		t.Fatalf("missing WAL not refused: %v", err)
	}
}

// TestWALShorterThanWatermarkRefused truncates the WAL below the
// committed watermark: durably synced operations are gone.
func TestWALShorterThanWatermarkRefused(t *testing.T) {
	dir := t.TempDir()
	l, db := openLog(t, dir, Options{})
	wire(db, l)
	putN(db, "b", 0, 5)
	mustSync(t, l)
	l.Abandon()
	if err := os.Truncate(filepath.Join(dir, walName(1)), walHeaderLen+4); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "shorter than the synced watermark") {
		t.Fatalf("short WAL not refused: %v", err)
	}
}

// TestCorruptCommitRefused damages meta.commit: the root of trust is
// gone, and guessing an epoch could resurrect a half-compacted past.
func TestCorruptCommitRefused(t *testing.T) {
	dir := t.TempDir()
	l, db := openLog(t, dir, Options{})
	wire(db, l)
	putN(db, "b", 0, 2)
	mustSync(t, l)
	l.Close()
	path := filepath.Join(dir, "meta.commit")
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)/2] ^= 0x01
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "meta.commit") {
		t.Fatalf("corrupt commit not refused: %v", err)
	}
}

// TestLegacyMetaDBMigrated opens a directory holding only a pre-WAL
// meta.db image: contents load, the epoch layout is created, and the
// legacy file is gone.
func TestLegacyMetaDBMigrated(t *testing.T) {
	dir := t.TempDir()
	legacy := metadb.New()
	legacy.CreateBucket("pkgs").Put([]byte("k"), []byte("v"))
	want := legacy.Snapshot()
	if err := os.WriteFile(filepath.Join(dir, "meta.db"), want, 0o644); err != nil {
		t.Fatal(err)
	}

	l, db := openLog(t, dir, Options{})
	if !l.Recovery().LegacyMigrated {
		t.Fatalf("migration not reported: %+v", l.Recovery())
	}
	if got := db.Snapshot(); !bytes.Equal(got, want) {
		t.Fatalf("legacy contents lost in migration")
	}
	if _, err := os.Stat(filepath.Join(dir, "meta.db")); !os.IsNotExist(err) {
		t.Fatalf("legacy meta.db still present after migration")
	}
	l.Close()
	// Reopen goes through the epoch layout, not the legacy path.
	got, rec := reopenSnap(t, dir)
	if rec.LegacyMigrated {
		t.Fatalf("second open re-migrated")
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("migrated contents lost on reopen")
	}
}

// TestLeftoverLegacyMetaDBSwept simulates a migration that crashed
// between the commit and the best-effort meta.db removal: the next
// successful open must sweep the stale legacy file — otherwise a later
// loss of meta.commit would silently re-migrate months-stale metadata
// through the legacy path instead of being refused.
func TestLeftoverLegacyMetaDBSwept(t *testing.T) {
	dir := t.TempDir()
	l, db := openLog(t, dir, Options{})
	wire(db, l)
	putN(db, "b", 0, 3)
	mustSync(t, l)
	want := db.Snapshot()
	l.Close()
	stale := metadb.New()
	stale.CreateBucket("ancient").Put([]byte("k"), []byte("v"))
	if err := os.WriteFile(filepath.Join(dir, "meta.db"), stale.Snapshot(), 0o644); err != nil {
		t.Fatal(err)
	}

	l2, db2 := openLog(t, dir, Options{})
	if got := db2.Snapshot(); !bytes.Equal(got, want) {
		t.Fatalf("committed state displaced by a stale legacy file")
	}
	if _, err := os.Stat(filepath.Join(dir, "meta.db")); !os.IsNotExist(err) {
		t.Fatalf("stale legacy meta.db not swept on commit-path open")
	}
	l2.Abandon()

	// With the debris gone, a lost commit is now correctly refused (the
	// WAL holds records) instead of re-migrating the stale file.
	if err := os.Remove(filepath.Join(dir, "meta.commit")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "root of trust") {
		t.Fatalf("lost commit after legacy debris sweep not refused: %v", err)
	}
}

// TestCompactionRoundTrip forces compaction and checks the epoch bump,
// the file turnover, and state equivalence.
func TestCompactionRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, db := openLog(t, dir, Options{})
	wire(db, l)
	putN(db, "b", 0, 20)
	mustSync(t, l)
	putN(db, "b", 20, 5)
	st, err := l.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if !st.Compacted || st.SnapshotBytes == 0 || st.Ops != 5 {
		t.Fatalf("compaction stats = %+v", st)
	}
	if l.Epoch() != 2 || l.Bytes() != walHeaderLen {
		t.Fatalf("epoch/length after compaction = %d/%d", l.Epoch(), l.Bytes())
	}
	for _, stale := range []string{snapName(1), walName(1)} {
		if _, err := os.Stat(filepath.Join(dir, stale)); !os.IsNotExist(err) {
			t.Fatalf("old epoch file %s not removed", stale)
		}
	}
	putN(db, "b", 25, 3) // post-compaction appends land in the new WAL
	mustSync(t, l)
	want2 := db.Snapshot()
	l.Close()

	got, rec := reopenSnap(t, dir)
	if !bytes.Equal(got, want2) {
		t.Fatalf("post-compaction state lost")
	}
	if rec.Epoch != 2 || rec.ReplayedOps != 3 {
		t.Fatalf("recovery = %+v, want epoch 2 with 3 replayed ops", rec)
	}
}

// TestSizeTriggeredCompaction pins the CompactBytes trigger.
func TestSizeTriggeredCompaction(t *testing.T) {
	dir := t.TempDir()
	l, db := openLog(t, dir, Options{CompactBytes: 256})
	wire(db, l)
	putN(db, "b", 0, 50)
	st := mustSync(t, l)
	if !st.Compacted {
		t.Fatalf("oversize sync did not compact: %+v", st)
	}
	l.Close()
}

// TestPeriodicCompaction pins the CompactEvery trigger.
func TestPeriodicCompaction(t *testing.T) {
	dir := t.TempDir()
	l, db := openLog(t, dir, Options{CompactEvery: 3})
	wire(db, l)
	for i := 0; i < 3; i++ {
		putN(db, "b", i, 1)
		st := mustSync(t, l)
		if got, want := st.Compacted, i == 2; got != want {
			t.Fatalf("sync %d compacted=%v, want %v", i, got, want)
		}
	}
	l.Close()
}

// TestOversizedDeltaCompacts pins the third trigger: a pending delta
// bigger than the whole database compacts instead of appending — a bulk
// load must not write every intermediate record version.
func TestOversizedDeltaCompacts(t *testing.T) {
	dir := t.TempDir()
	l, db := openLog(t, dir, Options{})
	wire(db, l)
	// Rewrite one key many times: pending grows with every version while
	// the database holds only the last.
	b := db.CreateBucket("b")
	big := bytes.Repeat([]byte("x"), 4096)
	for i := 0; i < 20; i++ {
		b.Put([]byte("churned"), append(big, byte(i)))
	}
	st := mustSync(t, l)
	if !st.Compacted {
		t.Fatalf("oversized delta appended instead of compacting: %+v", st)
	}
	if st.SnapshotBytes > 3*int64(len(big)) {
		t.Fatalf("snapshot wrote %d bytes for a ~%d-byte database", st.SnapshotBytes, len(big))
	}
	l.Close()
}

// TestCompactionCrashWindows drives a kill at each compaction point and
// checks every window reopens to a consistent state: before the commit
// switch the old epoch (without the pending batch), after it the new.
func TestCompactionCrashWindows(t *testing.T) {
	cases := []struct {
		point    KillPoint
		newState bool // reopen sees the state including pending ops
		newEpoch uint64
	}{
		{KillAfterSnapshot, false, 1},
		{KillAfterWALReset, false, 1},
		{KillAfterCompactCommit, true, 2},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("point-%d", tc.point), func(t *testing.T) {
			dir := t.TempDir()
			l, db := openLog(t, dir, Options{})
			wire(db, l)
			putN(db, "b", 0, 5)
			mustSync(t, l)
			oldState := db.Snapshot()
			putN(db, "b", 5, 5) // pending at compaction time
			newState := db.Snapshot()
			l.Kill = func(p KillPoint) error {
				if p == tc.point {
					return fmt.Errorf("injected crash")
				}
				return nil
			}
			if _, err := l.Compact(); err == nil {
				t.Fatal("killed compaction reported success")
			}
			l.Abandon()

			got, rec := reopenSnap(t, dir)
			want := oldState
			if tc.newState {
				want = newState
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("crash window reopened to the wrong state (recovery %+v)", rec)
			}
			if rec.Epoch != tc.newEpoch {
				t.Fatalf("reopened epoch %d, want %d", rec.Epoch, tc.newEpoch)
			}
			// Leftovers of the losing epoch must have been swept.
			des, _ := os.ReadDir(dir)
			for _, de := range des {
				name := de.Name()
				if (strings.HasPrefix(name, "meta.snap-") || strings.HasPrefix(name, "meta.wal-")) &&
					name != snapName(tc.newEpoch) && name != walName(tc.newEpoch) {
					t.Fatalf("stale file %s survived recovery", name)
				}
			}
			if rec.StaleFilesRemoved == 0 && tc.point != KillAfterCompactCommit {
				// Snapshot (and possibly WAL) of the next epoch were written
				// before the crash; recovery must report sweeping them.
				t.Fatalf("no stale files swept after crash at point %d: %+v", tc.point, rec)
			}
		})
	}
}

// TestStickyFailureRefusesFurtherCommits pins that a failed commit
// poisons the log.
func TestStickyFailureRefusesFurtherCommits(t *testing.T) {
	dir := t.TempDir()
	l, db := openLog(t, dir, Options{})
	wire(db, l)
	putN(db, "b", 0, 2)
	l.Kill = func(p KillPoint) error {
		if p == KillAfterAppend {
			return fmt.Errorf("injected failure")
		}
		return nil
	}
	if _, err := l.Sync(); err == nil {
		t.Fatal("killed sync reported success")
	}
	l.Kill = nil
	if _, err := l.Sync(); err == nil {
		t.Fatal("sync after failure not refused")
	}
	if l.Err() == nil {
		t.Fatal("sticky failure not surfaced")
	}
	l.Abandon()
}
