package metawal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"expelliarmus/internal/metadb"
	"expelliarmus/internal/recframe"
)

// The WAL file starts with an 8-byte magic and then holds records in the
// shared recframe framing — the exact vocabulary of the blob segment
// logs:
//
//	offset 0: "EXPWAL1\n"
//	records: | crc32c (4, LE) | payload len n (4, LE) | kind (1) | payload (n) |
//
// A record is the unit of framing; a *commit marker* (recCommit) is the
// unit of atomicity: replay buffers op records and applies them only
// when their marker arrives, so a torn Sync batch is discarded whole —
// recovery can land between Syncs, never inside one.
var walMagic = []byte("EXPWAL1\n")

// walHeaderLen is the length of the WAL file header (just the magic).
const walHeaderLen = int64(len("EXPWAL1\n"))

// Record kinds. The first four map 1:1 onto metadb.OpKind; recCommit
// closes a batch and carries the batch's op count as an integrity check.
const (
	recPut          byte = 1 // uvarint bucket len | bucket | uvarint key len | key | value
	recDelete       byte = 2 // uvarint bucket len | bucket | key
	recCreateBucket byte = 3 // bucket
	recDropBucket   byte = 4 // bucket
	recCommit       byte = 5 // uvarint op count of the batch it closes
)

// Local names for the shared framing, kept so the replay code reads in
// this package's vocabulary.
const recHeaderSize = recframe.HeaderSize

var (
	crcTable   = recframe.CRCTable
	errCorrupt = recframe.ErrCorrupt
)

func appendRecord(buf []byte, kind byte, payload []byte) []byte {
	return recframe.Append(buf, kind, payload)
}

func parseRecord(b []byte) (kind byte, payload []byte, size int, err error) {
	return recframe.Parse(b)
}

// appendOp frames one metadb op as a WAL record into buf.
func appendOp(buf []byte, op metadb.Op) []byte {
	var payload []byte
	var tmp [binary.MaxVarintLen64]byte
	putU := func(v uint64) { payload = append(payload, tmp[:binary.PutUvarint(tmp[:], v)]...) }
	var kind byte
	switch op.Kind {
	case metadb.OpPut:
		kind = recPut
		putU(uint64(len(op.Bucket)))
		payload = append(payload, op.Bucket...)
		putU(uint64(len(op.Key)))
		payload = append(payload, op.Key...)
		payload = append(payload, op.Value...)
	case metadb.OpDelete:
		kind = recDelete
		putU(uint64(len(op.Bucket)))
		payload = append(payload, op.Bucket...)
		payload = append(payload, op.Key...)
	case metadb.OpCreateBucket:
		kind = recCreateBucket
		payload = append(payload, op.Bucket...)
	case metadb.OpDropBucket:
		kind = recDropBucket
		payload = append(payload, op.Bucket...)
	default:
		// A kind this version cannot encode would silently vanish from the
		// replay history; fail loudly at write time instead of at recovery.
		panic(fmt.Sprintf("metawal: unencodable op kind %d", op.Kind))
	}
	return appendRecord(buf, kind, payload)
}

// decodeOp reverses appendOp for the four op record kinds. The returned
// Op's slices alias payload.
func decodeOp(kind byte, payload []byte) (metadb.Op, error) {
	getU := func() (uint64, error) {
		v, n := binary.Uvarint(payload)
		if n <= 0 {
			return 0, fmt.Errorf("%w: truncated varint in op record", errCorrupt)
		}
		payload = payload[n:]
		return v, nil
	}
	getBytes := func(what string) ([]byte, error) {
		n, err := getU()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(payload)) {
			return nil, fmt.Errorf("%w: op record %s length %d exceeds remaining %d", errCorrupt, what, n, len(payload))
		}
		out := payload[:n]
		payload = payload[n:]
		return out, nil
	}
	switch kind {
	case recPut:
		bucket, err := getBytes("bucket")
		if err != nil {
			return metadb.Op{}, err
		}
		key, err := getBytes("key")
		if err != nil {
			return metadb.Op{}, err
		}
		return metadb.Op{Kind: metadb.OpPut, Bucket: string(bucket), Key: key, Value: payload}, nil
	case recDelete:
		bucket, err := getBytes("bucket")
		if err != nil {
			return metadb.Op{}, err
		}
		return metadb.Op{Kind: metadb.OpDelete, Bucket: string(bucket), Key: payload}, nil
	case recCreateBucket:
		return metadb.Op{Kind: metadb.OpCreateBucket, Bucket: string(payload)}, nil
	case recDropBucket:
		return metadb.Op{Kind: metadb.OpDropBucket, Bucket: string(payload)}, nil
	default:
		return metadb.Op{}, fmt.Errorf("%w: unknown record kind %d", errCorrupt, kind)
	}
}

// applyOp replays one decoded op into db. Ops target buckets by name;
// CreateBucket-on-demand keeps a put/delete applicable even when the
// snapshot predates the bucket.
func applyOp(db *metadb.DB, op metadb.Op) {
	switch op.Kind {
	case metadb.OpPut:
		db.CreateBucket(op.Bucket).Put(op.Key, op.Value)
	case metadb.OpDelete:
		db.CreateBucket(op.Bucket).Delete(op.Key)
	case metadb.OpCreateBucket:
		db.CreateBucket(op.Bucket)
	case metadb.OpDropBucket:
		db.DeleteBucket(op.Bucket)
	}
}

// The commit file is the WAL's root of trust: which epoch's snapshot+log
// pair is current, and how far into the log durability extends. It is
// only ever replaced atomically (internal/atomicfile), never updated in
// place.
//
//	offset 0: "EXPWCM1\n"
//	body:     uvarint epoch | uvarint walLen
//	trailer:  crc32c of body (4, LE)
var commitMagic = []byte("EXPWCM1\n")

// encodeCommit serialises a commit record.
func encodeCommit(epoch uint64, walLen int64) []byte {
	var body []byte
	var tmp [binary.MaxVarintLen64]byte
	body = append(body, tmp[:binary.PutUvarint(tmp[:], epoch)]...)
	body = append(body, tmp[:binary.PutUvarint(tmp[:], uint64(walLen))]...)
	out := make([]byte, 0, len(commitMagic)+len(body)+4)
	out = append(out, commitMagic...)
	out = append(out, body...)
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.Checksum(body, crcTable))
	return append(out, crcBuf[:]...)
}

// parseCommit decodes a commit record, rejecting any structural damage.
// A commit that parses but makes no sense (epoch 0, walLen below the WAL
// header) is rejected too — the encoder can never produce one.
func parseCommit(b []byte) (epoch uint64, walLen int64, err error) {
	if len(b) < len(commitMagic)+4 || string(b[:len(commitMagic)]) != string(commitMagic) {
		return 0, 0, fmt.Errorf("metawal: bad commit magic")
	}
	body := b[len(commitMagic) : len(b)-4]
	want := binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.Checksum(body, crcTable) != want {
		return 0, 0, fmt.Errorf("metawal: commit checksum mismatch")
	}
	pos := 0
	getU := func() (uint64, error) {
		v, n := binary.Uvarint(body[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("metawal: truncated commit varint")
		}
		pos += n
		return v, nil
	}
	if epoch, err = getU(); err != nil {
		return 0, 0, err
	}
	wl, err := getU()
	if err != nil {
		return 0, 0, err
	}
	if pos != len(body) {
		return 0, 0, fmt.Errorf("metawal: %d trailing commit bytes", len(body)-pos)
	}
	if epoch == 0 {
		return 0, 0, fmt.Errorf("metawal: commit names epoch 0")
	}
	if int64(wl) < walHeaderLen {
		return 0, 0, fmt.Errorf("metawal: commit watermark %d below the WAL header", wl)
	}
	return epoch, int64(wl), nil
}

// encodeUvarint renders v as a standalone uvarint payload (the commit
// marker's op count).
func encodeUvarint(v int) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(v))
	return append([]byte(nil), tmp[:n]...)
}

// decodeUvarintAll decodes a payload that must be exactly one uvarint.
func decodeUvarintAll(b []byte) (uint64, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 || n != len(b) {
		return 0, errCorrupt
	}
	return v, nil
}

// snapName and walName render the epoch-numbered file names.
func snapName(epoch uint64) string { return fmt.Sprintf("meta.snap-%08d", epoch) }
func walName(epoch uint64) string  { return fmt.Sprintf("meta.wal-%08d", epoch) }
