package guestfs

import (
	"testing"

	"expelliarmus/internal/catalog"
	"expelliarmus/internal/fstree"
	"expelliarmus/internal/simio"
	"expelliarmus/internal/vdisk"
)

func newDisk(t *testing.T) *vdisk.Disk {
	t.Helper()
	d := vdisk.New("guest", 8<<20, vdisk.DefaultClusterSize)
	fs, err := fstree.Format(d, 512)
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range []string{"/etc", "/var/log", "/var/lib/dpkg", "/home/user", "/usr/bin"} {
		if err := fs.MkdirAll(dir); err != nil {
			t.Fatal(err)
		}
	}
	fs.WriteFile("/etc/hostname", []byte("guest-vm"))
	fs.WriteFile("/etc/machine-id", []byte("abc123"))
	fs.WriteFile("/var/log/syslog", []byte("log line"))
	fs.WriteFile("/home/user/file", []byte("user data"))
	fs.WriteFile("/usr/bin/tool", []byte("binary"))
	return d
}

func testDevice() *simio.Device {
	return simio.NewDevice(simio.PaperProfile().Scaled(catalog.ByteScale, catalog.FileScale))
}

func TestLaunchAndAccess(t *testing.T) {
	meter := &simio.Meter{}
	h := New(newDisk(t), testDevice(), meter)
	if h.Launched() {
		t.Fatal("handle launched before Launch")
	}
	if _, err := h.FS(); err == nil {
		t.Fatal("FS accessible before launch")
	}
	if err := h.Launch(); err != nil {
		t.Fatal(err)
	}
	if !h.Launched() {
		t.Fatal("Launched() false after Launch")
	}
	if meter.Phase(simio.PhaseLaunch) == 0 {
		t.Fatal("launch cost not charged")
	}
	fs, err := h.FS()
	if err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("/etc/hostname")
	if err != nil || string(data) != "guest-vm" {
		t.Fatalf("guest read: %q, %v", data, err)
	}
	if err := h.Launch(); err == nil {
		t.Fatal("double launch succeeded")
	}
}

func TestLaunchUnformattedDiskFails(t *testing.T) {
	d := vdisk.New("raw", 1<<20, vdisk.DefaultClusterSize)
	h := New(d, testDevice(), &simio.Meter{})
	if err := h.Launch(); err == nil {
		t.Fatal("launched handle on unformatted disk")
	}
}

func TestNilMeterIsSafe(t *testing.T) {
	h := New(newDisk(t), nil, nil)
	if err := h.Launch(); err != nil {
		t.Fatal(err)
	}
	if err := h.Sysprep(nil); err != nil {
		t.Fatal(err)
	}
}

func TestSysprepDefaults(t *testing.T) {
	meter := &simio.Meter{}
	h := New(newDisk(t), testDevice(), meter)
	if err := h.Launch(); err != nil {
		t.Fatal(err)
	}
	if err := h.Sysprep(nil); err != nil {
		t.Fatal(err)
	}
	fs, _ := h.FS()
	for _, gone := range []string{"/var/log/syslog", "/home/user/file", "/etc/machine-id", "/etc/hostname"} {
		if fs.Exists(gone) {
			t.Errorf("%s survived sysprep", gone)
		}
	}
	// Package database and binaries survive.
	if !fs.Exists("/var/lib/dpkg") {
		t.Error("package database wiped by sysprep")
	}
	if !fs.Exists("/usr/bin/tool") {
		t.Error("binaries wiped by sysprep")
	}
	if meter.Phase(simio.PhaseReset) == 0 {
		t.Error("reset cost not charged")
	}
}

func TestSysprepCustomPaths(t *testing.T) {
	h := New(newDisk(t), testDevice(), &simio.Meter{})
	h.Launch()
	if err := h.Sysprep([]string{"/usr/bin"}); err != nil {
		t.Fatal(err)
	}
	fs, _ := h.FS()
	if fs.Exists("/usr/bin/tool") {
		t.Error("custom sysprep path not removed")
	}
	if !fs.Exists("/var/log/syslog") {
		t.Error("custom sysprep removed default paths")
	}
}

func TestSysprepBeforeLaunchFails(t *testing.T) {
	h := New(newDisk(t), testDevice(), &simio.Meter{})
	if err := h.Sysprep(nil); err == nil {
		t.Fatal("sysprep before launch succeeded")
	}
}

func TestPackageManagerAccess(t *testing.T) {
	h := New(newDisk(t), testDevice(), &simio.Meter{})
	if _, err := h.PackageManager(); err == nil {
		t.Fatal("package manager before launch succeeded")
	}
	h.Launch()
	mgr, err := h.PackageManager()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := mgr.Installed()
	if err != nil || len(pkgs) != 0 {
		t.Fatalf("Installed = %v, %v", pkgs, err)
	}
}

func TestClose(t *testing.T) {
	h := New(newDisk(t), testDevice(), &simio.Meter{})
	h.Launch()
	h.Close()
	if h.Launched() {
		t.Fatal("handle launched after Close")
	}
	if _, err := h.FS(); err == nil {
		t.Fatal("FS accessible after Close")
	}
	// Relaunch works.
	if err := h.Launch(); err != nil {
		t.Fatal(err)
	}
}

func TestDiskAccessor(t *testing.T) {
	d := newDisk(t)
	h := New(d, testDevice(), nil)
	if h.Disk() != d {
		t.Fatal("Disk() returned wrong disk")
	}
}
