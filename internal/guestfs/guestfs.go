// Package guestfs provides a libguestfs-like access layer over virtual
// disks: a handle that must be launched before use (the paper's
// "configures and launches a guestfs handle", whose cost is a visible
// component of publish and retrieval times in Fig. 5a), filesystem access
// without booting the VMI, a package-manager accessor, and a
// virt-sysprep-style reset.
package guestfs

import (
	"fmt"

	"expelliarmus/internal/fstree"
	"expelliarmus/internal/pkgmgr"
	"expelliarmus/internal/simio"
	"expelliarmus/internal/vdisk"
)

// DefaultSysprepPaths are the guest paths cleared by a virt-sysprep style
// reset: instance-specific churn (logs, caches, spools, tmp) and user home
// directories. The package database under /var/lib/dpkg is preserved.
var DefaultSysprepPaths = []string{
	"/var/log", "/var/cache", "/var/spool", "/tmp",
	"/home", "/root", "/srv",
	"/etc/machine-id", "/etc/hostname",
}

// Handle is a guestfs handle bound to one disk. Operations other than
// Launch fail until the handle is launched. The handle charges its
// appliance-launch cost to the provided meter (both device and meter may be
// nil for uncosted use, e.g. in tests).
//
// A Handle itself belongs to one operation and is not safe for concurrent
// mutation, but the Device and Meter it charges are: the parallel package
// export of a publish runs read-only repacks against one launched handle
// from many goroutines, all charging the same meter.
type Handle struct {
	disk     *vdisk.Disk
	dev      *simio.Device
	meter    *simio.Meter
	fs       *fstree.FS
	launched bool
}

// New returns an unlaunched handle for the disk.
func New(disk *vdisk.Disk, dev *simio.Device, meter *simio.Meter) *Handle {
	return &Handle{disk: disk, dev: dev, meter: meter}
}

// Launch boots the appliance and mounts the guest filesystem, charging
// simio.PhaseLaunch. Launching twice is an error.
func (h *Handle) Launch() error {
	if h.launched {
		return fmt.Errorf("guestfs: handle already launched")
	}
	if h.dev != nil && h.meter != nil {
		h.meter.Charge(simio.PhaseLaunch, h.dev.LaunchCost())
	}
	fs, err := fstree.Mount(h.disk)
	if err != nil {
		return fmt.Errorf("guestfs: mount: %w", err)
	}
	h.fs = fs
	h.launched = true
	return nil
}

// Launched reports whether the handle has been launched.
func (h *Handle) Launched() bool { return h.launched }

// Disk returns the underlying disk.
func (h *Handle) Disk() *vdisk.Disk { return h.disk }

// FS returns the mounted guest filesystem.
func (h *Handle) FS() (*fstree.FS, error) {
	if !h.launched {
		return nil, fmt.Errorf("guestfs: handle not launched")
	}
	return h.fs, nil
}

// PackageManager returns a package manager operating on the guest.
func (h *Handle) PackageManager() (*pkgmgr.Manager, error) {
	fs, err := h.FS()
	if err != nil {
		return nil, err
	}
	return pkgmgr.New(fs)
}

// Sysprep resets the guest to a pristine state by removing the given paths
// (DefaultSysprepPaths if nil), charging simio.PhaseReset proportional to
// the filesystem's file count like virt-sysprep's full scan.
func (h *Handle) Sysprep(paths []string) error {
	fs, err := h.FS()
	if err != nil {
		return err
	}
	if paths == nil {
		paths = DefaultSysprepPaths
	}
	if h.dev != nil && h.meter != nil {
		h.meter.Charge(simio.PhaseReset, h.dev.ResetCost(fs.NumFiles()))
	}
	for _, p := range paths {
		if err := fs.RemoveAll(p); err != nil {
			return fmt.Errorf("guestfs: sysprep %s: %w", p, err)
		}
	}
	return nil
}

// Close shuts the handle down. Further operations require a new handle.
func (h *Handle) Close() {
	h.launched = false
	h.fs = nil
}
