// Package retrievecache implements the repository's retrieval cache: a
// size-bounded, concurrency-safe LRU of assembled VMI images. Retrieval
// (Algorithm 3) re-runs base copy, VMI reset and per-group package import
// from scratch on every request, and related work on VM image distribution
// identifies repeat instantiation of popular images as the dominant cost in
// real clouds — so the cache keeps the serialized form of recently
// assembled images and serves repeats without touching the assembler.
//
// Correctness is invalidation-shaped. A cache key is the quadruple
// (base image, sorted primary-package set, user-data source, repository
// generation); the generation is the combined striped counter the
// repository bumps around every mutation touching the key's base image or
// VMI name (publish commits, removals, user-data replacement — see
// vmirepo.GenerationFor), so any relevant change moves subsequent lookups
// to fresh keys and makes the previously cached entries for that base
// unreachable, while mutations scoped to other stripes leave them
// servable. Entries additionally
// carry the SHA-256 of their serialized image and are re-verified on every
// hit: a poisoned entry (bit rot, an aliasing bug, a caller scribbling on
// shared bytes) surfaces as ErrPoisoned instead of wrong image bytes.
//
// The cache is transparent at the cost-model level: an entry carries the
// full retrieval report of the assembly that produced it (imported
// packages and the per-phase meter decomposition), so a hit replays the
// exact modeled charges a cold retrieval would have accumulated. Hits and
// misses differ in wall-clock time only — the property the shared
// conformance suite in cachetest pins down.
package retrievecache

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"expelliarmus/internal/pkgmeta"
	"expelliarmus/internal/simio"
)

// ErrPoisoned marks a cache hit whose stored image bytes no longer match
// the content hash captured at insertion. Served bytes would be wrong, so
// the entry is evicted and the error surfaces to the caller.
var ErrPoisoned = errors.New("retrievecache: cached image failed content verification")

// Key identifies one cacheable assembly. Two retrievals share an entry
// exactly when they assemble the same primary set on the same base image
// with the same user data against the same repository generation.
type Key struct {
	// BaseID is the base image the assembly clusters on.
	BaseID string
	// Primaries is the sorted primary-package set, NUL-joined so the key
	// is comparable; build keys with NewKey to get the normalisation.
	Primaries string
	// UserData names the VMI whose user-data archive the assembly imports
	// ("" when none) — two VMIs with identical base and primaries but
	// different user data must never share an entry.
	UserData string
	// Generation is the striped repository generation the assembly ran
	// against (see vmirepo.GenerationFor, summed over the stripes of the
	// base image and the VMI name). Any mutation relevant to those keys
	// bumps it, which is the cache's whole invalidation story: stale
	// entries are not found.
	Generation uint64
}

// NewKey builds a Key, normalising the primary set by sorting a copy.
func NewKey(baseID string, primaries []string, userData string, generation uint64) Key {
	ps := append([]string(nil), primaries...)
	sort.Strings(ps)
	return Key{
		BaseID:     baseID,
		Primaries:  strings.Join(ps, "\x00"),
		UserData:   userData,
		Generation: generation,
	}
}

// Entry is one cached assembly: the serialized image plus everything
// needed to replay the cold retrieval's report. Entries handed to Put are
// owned by the cache; entries returned by Get are shared — callers must
// treat every field as read-only and copy what they keep.
type Entry struct {
	// Image is the serialized (qcow2-like) assembled image. It is verified
	// against the content hash captured at insertion on every hit.
	Image []byte
	// Base is the base-attribute quadruple of the assembled image.
	Base pkgmeta.BaseAttrs
	// Imported lists the packages the assembly installed, in install
	// order; ImportedBytes is their total installed size.
	Imported      []string
	ImportedBytes int64
	// Phases is the cold retrieval's full per-phase cost decomposition. A
	// hit charges these into a fresh meter, so hit and miss reports are
	// byte-identical — the cache never changes modeled semantics.
	Phases map[simio.Phase]time.Duration

	sum [sha256.Size]byte
}

// NewEntry builds an entry, copying the imported list and phase map (the
// image bytes are taken over as-is; callers hand over ownership).
func NewEntry(image []byte, base pkgmeta.BaseAttrs, imported []string, importedBytes int64, phases map[simio.Phase]time.Duration) *Entry {
	ph := make(map[simio.Phase]time.Duration, len(phases))
	for p, d := range phases {
		ph[p] = d
	}
	return &Entry{
		Image:         image,
		Base:          base,
		Imported:      append([]string(nil), imported...),
		ImportedBytes: importedBytes,
		Phases:        ph,
	}
}

// entryOverhead approximates the per-entry bookkeeping bytes (list node,
// map slot, struct headers) charged against the byte budget on top of the
// payload, so a cache full of tiny entries cannot balloon unaccounted.
const entryOverhead = 256

// cost is the bytes an entry charges against the budget.
func cost(key Key, e *Entry) int64 {
	c := int64(entryOverhead + len(e.Image) + len(key.BaseID) + len(key.Primaries) + len(key.UserData))
	for _, p := range e.Imported {
		c += int64(len(p))
	}
	return c
}

// Stats reports cache effectiveness and accounting.
type Stats struct {
	// Hits and Misses count Get outcomes; Puts counts successful
	// insertions (including replacements of an existing key).
	Hits, Misses, Puts int64
	// Evictions counts entries dropped by the LRU to fit the byte budget;
	// Rejected counts entries that alone exceed it — refused by Put, or
	// skipped upfront by the caller and recorded via NoteRejected.
	Evictions, Rejected int64
	// Poisoned counts hits whose image bytes failed content verification
	// (the entry is evicted and ErrPoisoned returned).
	Poisoned int64
	// Entries and Bytes describe current occupancy; MaxBytes the budget.
	Entries  int
	Bytes    int64
	MaxBytes int64
}

// node is one LRU element; the doubly linked list is ordered most- to
// least-recently used.
type node struct {
	key        Key
	entry      *Entry
	cost       int64
	prev, next *node
}

// Cache is the retrieval cache. All methods are safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	items    map[Key]*node
	head     *node // most recently used
	tail     *node // least recently used
	bytes    int64

	hits, misses, puts, evictions, rejected, poisoned int64
}

// New returns an empty cache bounded to maxBytes of accounted entry cost.
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		panic(fmt.Sprintf("retrievecache: non-positive byte budget %d", maxBytes))
	}
	return &Cache{maxBytes: maxBytes, items: make(map[Key]*node)}
}

// unlink removes n from the LRU list. Caller holds mu.
func (c *Cache) unlink(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

// pushFront makes n the most recently used. Caller holds mu.
func (c *Cache) pushFront(n *node) {
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

// removeLocked drops n entirely. Caller holds mu.
func (c *Cache) removeLocked(n *node) {
	c.unlink(n)
	delete(c.items, n.key)
	c.bytes -= n.cost
}

// Get returns the entry for key, refreshing its recency, or (nil, nil) on
// a miss. The stored image is re-verified against the content hash taken
// at insertion; on mismatch the entry is evicted and ErrPoisoned returned,
// so damaged bytes can never be served as an assembled image.
func (c *Cache) Get(key Key) (*Entry, error) { return c.get(key, true) }

// Peek is Get for double-checked miss paths: a resident entry is served
// (verified, recency refreshed, counted as a hit), but a miss is not
// counted — the caller already counted its miss before deciding to run
// the assembly this lookup re-checks.
func (c *Cache) Peek(key Key) (*Entry, error) { return c.get(key, false) }

func (c *Cache) get(key Key, countMiss bool) (*Entry, error) {
	c.mu.Lock()
	n, ok := c.items[key]
	if !ok {
		if countMiss {
			c.misses++
		}
		c.mu.Unlock()
		return nil, nil
	}
	e := n.entry
	c.mu.Unlock()

	// Hash outside the lock: hits of large images must not serialise.
	if sha256.Sum256(e.Image) != e.sum {
		c.mu.Lock()
		// Re-check: the entry may have been replaced or evicted since.
		if cur, ok := c.items[key]; ok && cur == n {
			c.removeLocked(cur)
		}
		c.poisoned++
		c.mu.Unlock()
		return nil, fmt.Errorf("retrievecache: base %s generation %d: %w", key.BaseID, key.Generation, ErrPoisoned)
	}

	c.mu.Lock()
	// Refresh recency only if the same node is still resident.
	if cur, ok := c.items[key]; ok && cur == n {
		c.unlink(cur)
		c.pushFront(cur)
	}
	c.hits++
	c.mu.Unlock()
	return e, nil
}

// Put inserts (or replaces) the entry under key, captures its content
// hash, and evicts least-recently-used entries until the budget holds. An
// entry whose cost alone exceeds the budget is rejected and reported
// false; the cache is unchanged — and the rejection happens before the
// content hash is computed, so an uncacheably large image does not pay a
// full SHA-256 on every miss.
func (c *Cache) Put(key Key, e *Entry) bool {
	n := &node{key: key, entry: e, cost: cost(key, e)}
	if n.cost > c.maxBytes { // maxBytes is immutable after New
		c.mu.Lock()
		c.rejected++
		c.mu.Unlock()
		return false
	}
	// Hash outside the lock, like Get: inserts of large images must not
	// serialise the cache.
	e.sum = sha256.Sum256(e.Image)
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.items[key]; ok {
		c.removeLocked(old)
	}
	c.items[key] = n
	c.pushFront(n)
	c.bytes += n.cost
	c.puts++
	for c.bytes > c.maxBytes && c.tail != nil {
		c.removeLocked(c.tail)
		c.evictions++
	}
	return true
}

// NoteRejected records an insert the caller skipped because the entry
// could never be resident (a serialized image whose lower-bound size
// already exceeds the budget), keeping Stats.Rejected an accurate count
// of uncacheable assemblies even when Put is never called for them.
func (c *Cache) NoteRejected() {
	c.mu.Lock()
	c.rejected++
	c.mu.Unlock()
}

// Remove drops the entry for key, reporting whether one was resident.
func (c *Cache) Remove(key Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.items[key]
	if !ok {
		return false
	}
	c.removeLocked(n)
	return true
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// MaxBytes returns the byte budget (immutable after New). Callers can use
// it to skip building an entry that could never be resident.
func (c *Cache) MaxBytes() int64 { return c.maxBytes }

// Stats returns a consistent snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Puts:      c.puts,
		Evictions: c.evictions,
		Rejected:  c.rejected,
		Poisoned:  c.poisoned,
		Entries:   len(c.items),
		Bytes:     c.bytes,
		MaxBytes:  c.maxBytes,
	}
}
