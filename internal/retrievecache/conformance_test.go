package retrievecache_test

import (
	"testing"

	"expelliarmus/internal/retrievecache"
	"expelliarmus/internal/retrievecache/cachetest"
)

// TestConformance runs the shared retrieval-cache conformance suite
// against the canonical LRU implementation. Alternative implementations
// (sharded, persistent) must pass the identical suite before the core can
// swap them in — the same contract discipline blobstoretest enforces for
// blob backends.
func TestConformance(t *testing.T) {
	cachetest.Run(t, func(maxBytes int64) cachetest.Cache {
		return retrievecache.New(maxBytes)
	})
}
