// Package cachetest is the shared conformance suite for retrieval-cache
// implementations, mirroring internal/blobstore/blobstoretest: it pins the
// exact fill/evict ordering, hit byte-identity, verification and stats
// accounting semantics an alternative cache (a sharded or persistent one,
// say) must reproduce before the core can trust it. Run the suite under
// -race; several subtests exercise concurrent access.
package cachetest

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"expelliarmus/internal/pkgmeta"
	"expelliarmus/internal/retrievecache"
	"expelliarmus/internal/simio"
)

// Cache is the surface an implementation must provide. The concrete
// *retrievecache.Cache satisfies it.
type Cache interface {
	Get(retrievecache.Key) (*retrievecache.Entry, error)
	Put(retrievecache.Key, *retrievecache.Entry) bool
	Remove(retrievecache.Key) bool
	Len() int
	Stats() retrievecache.Stats
}

// Factory creates an empty cache bounded to maxBytes.
type Factory func(maxBytes int64) Cache

// Run executes the conformance suite against caches built by the factory.
func Run(t *testing.T, factory Factory) {
	t.Run("HitByteIdentity", func(t *testing.T) { testHitByteIdentity(t, factory) })
	t.Run("MissThenHit", func(t *testing.T) { testMissThenHit(t, factory) })
	t.Run("KeyNormalisation", func(t *testing.T) { testKeyNormalisation(t, factory) })
	t.Run("GenerationsAreDistinctKeys", func(t *testing.T) { testGenerationKeys(t, factory) })
	t.Run("StripedGenerationIsolation", func(t *testing.T) { testStripedGenerationIsolation(t, factory) })
	t.Run("FillEvictOrdering", func(t *testing.T) { testFillEvictOrdering(t, factory) })
	t.Run("GetRefreshesRecency", func(t *testing.T) { testGetRefreshesRecency(t, factory) })
	t.Run("ReplaceSameKey", func(t *testing.T) { testReplaceSameKey(t, factory) })
	t.Run("OversizedRejected", func(t *testing.T) { testOversizedRejected(t, factory) })
	t.Run("StatsAccounting", func(t *testing.T) { testStatsAccounting(t, factory) })
	t.Run("PoisonDetected", func(t *testing.T) { testPoisonDetected(t, factory) })
	t.Run("Remove", func(t *testing.T) { testRemove(t, factory) })
	t.Run("ConcurrentMixed", func(t *testing.T) { testConcurrentMixed(t, factory) })
}

// keyOf builds a distinct, deterministic key for index i.
func keyOf(i int) retrievecache.Key {
	return retrievecache.NewKey(
		fmt.Sprintf("base-%04d", i),
		[]string{"pkg-a", fmt.Sprintf("pkg-%d", i)},
		fmt.Sprintf("vmi-%d", i),
		uint64(i%3),
	)
}

// entryOf builds a deterministic entry whose image is `size` bytes.
func entryOf(i, size int) *retrievecache.Entry {
	img := bytes.Repeat([]byte{byte(i)}, size)
	return retrievecache.NewEntry(
		img,
		pkgmeta.BaseAttrs{Type: "server", Distro: "ubuntu", Version: "18.04", Arch: "amd64"},
		[]string{fmt.Sprintf("pkg-%d", i), "pkg-a"},
		int64(size),
		map[simio.Phase]time.Duration{
			simio.PhaseCopy:   time.Duration(i+1) * time.Second,
			simio.PhaseImport: time.Duration(i+1) * time.Millisecond,
		},
	)
}

func testHitByteIdentity(t *testing.T, factory Factory) {
	c := factory(1 << 20)
	want := entryOf(7, 1024)
	// Keep an independent copy: the cache owns the bytes it was handed.
	wantImg := append([]byte(nil), want.Image...)
	if !c.Put(keyOf(7), want) {
		t.Fatal("Put rejected a fitting entry")
	}
	got, err := c.Get(keyOf(7))
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got == nil {
		t.Fatal("miss for a resident key")
	}
	if !bytes.Equal(got.Image, wantImg) {
		t.Fatal("hit returned different image bytes than were inserted")
	}
	if !reflect.DeepEqual(got.Imported, []string{"pkg-7", "pkg-a"}) {
		t.Fatalf("hit lost the imported list: %v", got.Imported)
	}
	if got.ImportedBytes != 1024 {
		t.Fatalf("hit lost ImportedBytes: %d", got.ImportedBytes)
	}
	if got.Phases[simio.PhaseCopy] != 8*time.Second {
		t.Fatalf("hit lost the phase decomposition: %v", got.Phases)
	}
	// Repeated hits stay byte-identical.
	again, err := c.Get(keyOf(7))
	if err != nil || again == nil || !bytes.Equal(again.Image, wantImg) {
		t.Fatalf("second hit differs: %v", err)
	}
}

func testMissThenHit(t *testing.T, factory Factory) {
	c := factory(1 << 20)
	if e, err := c.Get(keyOf(1)); err != nil || e != nil {
		t.Fatalf("empty cache returned %v, %v", e, err)
	}
	c.Put(keyOf(1), entryOf(1, 64))
	if e, err := c.Get(keyOf(1)); err != nil || e == nil {
		t.Fatalf("hit after put returned %v, %v", e, err)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 put", st)
	}
}

func testKeyNormalisation(t *testing.T, factory Factory) {
	c := factory(1 << 20)
	k1 := retrievecache.NewKey("base", []string{"redis", "apache2", "nginx"}, "vmi", 4)
	k2 := retrievecache.NewKey("base", []string{"nginx", "redis", "apache2"}, "vmi", 4)
	if k1 != k2 {
		t.Fatalf("primary order changed the key: %+v vs %+v", k1, k2)
	}
	c.Put(k1, entryOf(1, 64))
	if e, err := c.Get(k2); err != nil || e == nil {
		t.Fatal("permuted primary set missed")
	}
	// Differing user-data sources must not share an entry.
	k3 := retrievecache.NewKey("base", []string{"redis", "apache2", "nginx"}, "other-vmi", 4)
	if e, err := c.Get(k3); err != nil || e != nil {
		t.Fatal("different user-data source hit the same entry")
	}
}

func testGenerationKeys(t *testing.T, factory Factory) {
	c := factory(1 << 20)
	old := retrievecache.NewKey("base", []string{"redis"}, "vmi", 10)
	c.Put(old, entryOf(1, 64))
	// A repository mutation moves lookups to a fresh generation: the old
	// entry must be unreachable there.
	cur := retrievecache.NewKey("base", []string{"redis"}, "vmi", 11)
	if e, err := c.Get(cur); err != nil || e != nil {
		t.Fatal("lookup at a newer generation hit a stale entry")
	}
}

// testStripedGenerationIsolation pins the cache-side half of the striped
// invalidation contract: generations are per-key, so a mutation that
// moves one base's generation (its lookups shift to a fresh key and
// miss) must leave another base's entry reachable at its own unchanged
// generation — the cache itself never couples keys.
func testStripedGenerationIsolation(t *testing.T, factory Factory) {
	c := factory(1 << 20)
	hot := retrievecache.NewKey("base-hot", []string{"redis"}, "vmi-hot", 7)
	other := retrievecache.NewKey("base-other", []string{"nginx"}, "vmi-other", 3)
	c.Put(hot, entryOf(1, 512))
	c.Put(other, entryOf(2, 512))

	// A mutation on base-other moves only its generation: its old entry
	// becomes unreachable there...
	otherNext := retrievecache.NewKey("base-other", []string{"nginx"}, "vmi-other", 4)
	if e, err := c.Get(otherNext); err != nil || e != nil {
		t.Fatal("lookup at base-other's fresh generation hit its stale entry")
	}
	c.Put(otherNext, entryOf(3, 512))

	// ...while the hot base's entry, whose generation did not move, stays
	// servable through any amount of other-base churn.
	if e, err := c.Get(hot); err != nil || e == nil {
		t.Fatal("other-base generation churn made the hot entry unreachable")
	}
	if e, err := c.Get(otherNext); err != nil || e == nil {
		t.Fatal("fresh-generation entry not served")
	}
}

// fitN returns a byte budget that holds exactly n entries of the given
// image size, probing the implementation's own cost accounting so the
// suite does not hard-code an overhead constant.
func fitN(factory Factory, n, size int) int64 {
	probe := factory(1 << 30)
	probe.Put(keyOf(0), entryOf(0, size))
	one := probe.Stats().Bytes
	// Entry costs vary by a few bytes with the decimal width of the index;
	// pad by half an entry so exactly n comfortably fit and n+1 never does.
	return one*int64(n) + one/2
}

func testFillEvictOrdering(t *testing.T, factory Factory) {
	c := factory(fitN(factory, 2, 4096))
	c.Put(keyOf(1), entryOf(1, 4096))
	c.Put(keyOf(2), entryOf(2, 4096))
	if c.Len() != 2 {
		t.Fatalf("2 entries should fit, have %d", c.Len())
	}
	c.Put(keyOf(3), entryOf(3, 4096)) // evicts 1 (least recently used)
	if c.Len() != 2 {
		t.Fatalf("budget holds 2, have %d", c.Len())
	}
	if e, err := c.Get(keyOf(1)); err != nil || e != nil {
		t.Fatal("oldest entry survived eviction")
	}
	for _, i := range []int{2, 3} {
		if e, err := c.Get(keyOf(i)); err != nil || e == nil {
			t.Fatalf("entry %d evicted out of LRU order", i)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func testGetRefreshesRecency(t *testing.T, factory Factory) {
	c := factory(fitN(factory, 2, 4096))
	c.Put(keyOf(1), entryOf(1, 4096))
	c.Put(keyOf(2), entryOf(2, 4096))
	if e, err := c.Get(keyOf(1)); err != nil || e == nil {
		t.Fatal("warming Get failed")
	}
	c.Put(keyOf(3), entryOf(3, 4096)) // must evict 2, not the refreshed 1
	if e, err := c.Get(keyOf(2)); err != nil || e != nil {
		t.Fatal("LRU victim survived")
	}
	if e, err := c.Get(keyOf(1)); err != nil || e == nil {
		t.Fatal("recently used entry was evicted")
	}
}

func testReplaceSameKey(t *testing.T, factory Factory) {
	c := factory(1 << 20)
	c.Put(keyOf(1), entryOf(1, 512))
	replacement := entryOf(2, 2048)
	replacementImg := append([]byte(nil), replacement.Image...)
	c.Put(keyOf(1), replacement)
	if c.Len() != 1 {
		t.Fatalf("replacement duplicated the key: %d entries", c.Len())
	}
	e, err := c.Get(keyOf(1))
	if err != nil || e == nil || !bytes.Equal(e.Image, replacementImg) {
		t.Fatal("replacement did not take effect")
	}
	// Bytes accounting must reflect the replacement, not the sum.
	st := c.Stats()
	if st.Bytes <= 2048 || st.Bytes >= 2048+512 {
		t.Fatalf("bytes after replacement = %d, want ~2048+overhead", st.Bytes)
	}
}

func testOversizedRejected(t *testing.T, factory Factory) {
	c := factory(1024)
	c.Put(keyOf(1), entryOf(1, 128))
	if c.Put(keyOf(2), entryOf(2, 4096)) {
		t.Fatal("entry larger than the whole budget was accepted")
	}
	// The resident entry must be untouched — rejection evicts nothing.
	if e, err := c.Get(keyOf(1)); err != nil || e == nil {
		t.Fatal("rejection disturbed resident entries")
	}
	st := c.Stats()
	if st.Rejected != 1 || st.Evictions != 0 || st.Entries != 1 {
		t.Fatalf("stats after rejection = %+v", st)
	}
}

func testStatsAccounting(t *testing.T, factory Factory) {
	c := factory(1 << 20)
	var want int64
	for i := 0; i < 8; i++ {
		c.Put(keyOf(i), entryOf(i, 100*(i+1)))
	}
	st := c.Stats()
	if st.Entries != 8 || st.Puts != 8 {
		t.Fatalf("stats = %+v, want 8 entries / 8 puts", st)
	}
	// Bytes covers at least the payloads and is consistent: removing
	// everything returns it to zero.
	for i := 0; i < 8; i++ {
		want += int64(100 * (i + 1))
	}
	if st.Bytes < want {
		t.Fatalf("bytes = %d accounts less than the %d payload bytes", st.Bytes, want)
	}
	if st.MaxBytes != 1<<20 {
		t.Fatalf("MaxBytes = %d", st.MaxBytes)
	}
	for i := 0; i < 8; i++ {
		if !c.Remove(keyOf(i)) {
			t.Fatalf("Remove(%d) found nothing", i)
		}
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("after removing all: %+v", st)
	}
}

func testPoisonDetected(t *testing.T, factory Factory) {
	c := factory(1 << 20)
	e := entryOf(1, 1024)
	c.Put(keyOf(1), e)
	// Simulate post-insertion corruption (bit rot, an aliasing bug): the
	// cache holds the same backing array, so scribbling on it models a
	// poisoned entry exactly.
	e.Image[512] ^= 0xFF
	got, err := c.Get(keyOf(1))
	if !errors.Is(err, retrievecache.ErrPoisoned) {
		t.Fatalf("poisoned hit returned (%v, %v), want ErrPoisoned", got, err)
	}
	// The poisoned entry must be gone: the next lookup is a clean miss.
	if e, err := c.Get(keyOf(1)); err != nil || e != nil {
		t.Fatalf("poisoned entry still resident: (%v, %v)", e, err)
	}
	st := c.Stats()
	if st.Poisoned != 1 || st.Entries != 0 {
		t.Fatalf("stats after poison = %+v", st)
	}
}

func testRemove(t *testing.T, factory Factory) {
	c := factory(1 << 20)
	c.Put(keyOf(1), entryOf(1, 64))
	if !c.Remove(keyOf(1)) {
		t.Fatal("Remove missed a resident entry")
	}
	if c.Remove(keyOf(1)) {
		t.Fatal("double Remove reported success")
	}
	if e, err := c.Get(keyOf(1)); err != nil || e != nil {
		t.Fatal("removed entry still served")
	}
}

func testConcurrentMixed(t *testing.T, factory Factory) {
	c := factory(fitN(factory, 16, 4096))
	const workers, iters = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (w*iters + i) % 32 // contended key space > capacity
				switch i % 3 {
				case 0:
					c.Put(keyOf(k), entryOf(k, 4096))
				case 1:
					e, err := c.Get(keyOf(k))
					if err != nil {
						t.Errorf("worker %d: Get: %v", w, err)
						return
					}
					if e != nil && len(e.Image) != 4096 {
						t.Errorf("worker %d: hit with %d image bytes", w, len(e.Image))
						return
					}
				case 2:
					c.Remove(keyOf(k))
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes > st.MaxBytes {
		t.Fatalf("budget exceeded after concurrent churn: %+v", st)
	}
	if st.Hits+st.Misses == 0 || st.Puts == 0 {
		t.Fatalf("no traffic recorded: %+v", st)
	}
}
