package retrievecache

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"expelliarmus/internal/pkgmeta"
	"expelliarmus/internal/simio"
)

func testEntry(size int) *Entry {
	return NewEntry(bytes.Repeat([]byte{0x42}, size), pkgmeta.BaseAttrs{},
		[]string{"redis"}, int64(size),
		map[simio.Phase]time.Duration{simio.PhaseCopy: time.Second})
}

// TestNewEntryCopies pins the ownership contract: NewEntry copies the
// imported list and phase map, so a caller reusing its slices/maps cannot
// retroactively change a cached report.
func TestNewEntryCopies(t *testing.T) {
	imported := []string{"redis"}
	phases := map[simio.Phase]time.Duration{simio.PhaseCopy: time.Second}
	e := NewEntry([]byte("img"), pkgmeta.BaseAttrs{}, imported, 3, phases)
	imported[0] = "mutated"
	phases[simio.PhaseCopy] = time.Hour
	if e.Imported[0] != "redis" || e.Phases[simio.PhaseCopy] != time.Second {
		t.Fatalf("entry aliases caller data: %v %v", e.Imported, e.Phases)
	}
}

// TestNewKeyDoesNotMutateInput checks the sort in NewKey operates on a
// copy — callers hand in live VMIRecord slices.
func TestNewKeyDoesNotMutateInput(t *testing.T) {
	primaries := []string{"z", "a", "m"}
	NewKey("base", primaries, "vmi", 1)
	if primaries[0] != "z" || primaries[1] != "a" || primaries[2] != "m" {
		t.Fatalf("NewKey reordered the caller's slice: %v", primaries)
	}
}

func TestNewRejectsNonPositiveBudget(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

// TestEvictionKeepsBytesExact walks a long insert sequence over a small
// budget and checks the byte accounting never drifts: after every Put the
// resident total equals the sum of resident entry costs.
func TestEvictionKeepsBytesExact(t *testing.T) {
	c := New(10_000)
	keys := make([]Key, 40)
	for i := range keys {
		keys[i] = NewKey("base", []string{"p"}, "vmi", uint64(i))
	}
	for i, k := range keys {
		c.Put(k, testEntry(100*(1+i%7)))
		var sum int64
		c.mu.Lock()
		for _, n := range c.items {
			sum += n.cost
		}
		bytes, max := c.bytes, c.maxBytes
		c.mu.Unlock()
		if bytes != sum {
			t.Fatalf("after put %d: accounted %d != resident sum %d", i, bytes, sum)
		}
		if bytes > max {
			t.Fatalf("after put %d: budget exceeded (%d > %d)", i, bytes, max)
		}
	}
}

// TestConcurrentSameKey hammers one key from many goroutines mixing Put,
// Get and Remove; under -race this pins the locking story, and the
// invariant that a hit always carries self-consistent entry contents.
func TestConcurrentSameKey(t *testing.T) {
	c := New(1 << 20)
	key := NewKey("base", []string{"p"}, "vmi", 1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				switch (w + i) % 3 {
				case 0:
					c.Put(key, testEntry(512))
				case 1:
					e, err := c.Get(key)
					if err != nil {
						t.Errorf("Get: %v", err)
						return
					}
					if e != nil && len(e.Image) != 512 {
						t.Errorf("hit with %d bytes", len(e.Image))
						return
					}
				case 2:
					c.Remove(key)
				}
			}
		}(w)
	}
	wg.Wait()
}
