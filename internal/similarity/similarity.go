// Package similarity implements the semantic metrics of Sec. III of the
// paper: per-package similarity simP over the attribute quadruple, base
// image similarity simBI, size-weighted package similarity simsize, the
// Jaccard-style VMI graph similarity SimG, and the semantic compatibility
// predicate comp used by base-image selection and VMI assembly.
//
// Where the paper leaves the exact attribute-matching function open, we
// use multiplicative attribute agreement: name mismatch gives 0; same name
// scores the product of distro equality, version similarity (1 for equal,
// 1/2 for equal major version, 1/4 otherwise) and architecture
// compatibility (equal or either side "all", per Sec. III-C's portability
// rule). This preserves the properties the algorithms rely on: simP = 1
// exactly for semantically identical packages, symmetric, and in [0,1].
package similarity

import (
	"strings"

	"expelliarmus/internal/pkgmeta"
	"expelliarmus/internal/semgraph"
)

// VersionSim scores version agreement: 1 for identical versions, 0.5 for
// matching major components, 0.25 otherwise.
func VersionSim(a, b string) float64 {
	if a == b {
		return 1
	}
	if major(a) == major(b) {
		return 0.5
	}
	return 0.25
}

func major(v string) string {
	if i := strings.IndexAny(v, ".-+~"); i >= 0 {
		return v[:i]
	}
	return v
}

// ArchCompatible reports architecture compatibility: equal values, or
// either side the portable "all".
func ArchCompatible(a, b string) bool {
	return a == b || a == pkgmeta.ArchAll || b == pkgmeta.ArchAll
}

// SimP is the package similarity: zero when the pkg (name) attributes
// differ, otherwise the product of distro, version and architecture
// agreement. SimP is symmetric and SimP(p,p) = 1.
func SimP(p1, p2 pkgmeta.Package) float64 {
	if p1.Name != p2.Name {
		return 0
	}
	s := 1.0
	if p1.Distro != p2.Distro {
		s *= 0.5
	}
	s *= VersionSim(p1.Version, p2.Version)
	if !ArchCompatible(p1.Arch, p2.Arch) {
		return 0
	}
	return s
}

// SimBI is the base-image similarity over the attribute quadruple
// (type, distro, ver, arch). Differing type, distro or arch yield 0;
// version contributes VersionSim. SimBI = 1 means the quadruples agree
// exactly, the condition Algorithm 2 requires of replacement candidates.
func SimBI(a, b pkgmeta.BaseAttrs) float64 {
	if a.Type != b.Type || a.Distro != b.Distro || a.Arch != b.Arch {
		return 0
	}
	return VersionSim(a.Version, b.Version)
}

// SimSize is the normalised size weight of a matched package pair: the
// larger of the two installed sizes divided by the largest package size in
// the union of both VMIs (Sec. III-F).
func SimSize(p1, p2 pkgmeta.Package, maxAll int64) float64 {
	if maxAll <= 0 {
		return 0
	}
	m := p1.InstalledSize
	if p2.InstalledSize > m {
		m = p2.InstalledSize
	}
	return float64(m) / float64(maxAll)
}

// SimG computes the VMI semantic similarity between two graphs: the
// base-image similarity multiplied by the Jaccard-style (intersection over
// union) ratio of size-weighted package similarities. Packages are matched
// by their pkg attribute (name); the denominator runs over the union of
// both package sets, so adding unrelated packages to either VMI strictly
// lowers similarity.
func SimG(g1, g2 *semgraph.Graph) float64 {
	base := SimBI(g1.Base(), g2.Base())
	if base == 0 {
		return 0
	}
	if g1.Len() == 0 && g2.Len() == 0 {
		return base
	}
	// Largest installed size across the union normalises the weights.
	var maxAll int64
	for _, v := range g1.Vertices() {
		if v.Pkg.InstalledSize > maxAll {
			maxAll = v.Pkg.InstalledSize
		}
	}
	for _, v := range g2.Vertices() {
		if v.Pkg.InstalledSize > maxAll {
			maxAll = v.Pkg.InstalledSize
		}
	}
	if maxAll == 0 {
		maxAll = 1
	}

	var num, den float64
	seen := map[string]bool{}
	for _, v1 := range g1.Vertices() {
		if v2, ok := g2.Vertex(v1.Pkg.Name); ok {
			w := SimSize(v1.Pkg, v2.Pkg, maxAll)
			num += w * SimP(v1.Pkg, v2.Pkg)
			den += w
		} else {
			den += SimSize(v1.Pkg, v1.Pkg, maxAll)
		}
		seen[v1.Pkg.Name] = true
	}
	for _, v2 := range g2.Vertices() {
		if !seen[v2.Pkg.Name] {
			den += SimSize(v2.Pkg, v2.Pkg, maxAll)
		}
	}
	if den == 0 {
		return 0
	}
	return base * num / den
}

// Comp is the semantic compatibility between a base-image subgraph and a
// primary-package subgraph (Sec. III-G): the product of SimP over all
// vertex pairs sharing a pkg attribute. A value of 1 means every package
// the primary subgraph expects from the base is present in a semantically
// identical version — "the primary packages can be installed and used
// together with the base image". An empty intersection is vacuously
// compatible.
func Comp(baseSub, primarySub *semgraph.Graph) float64 {
	prod := 1.0
	for _, v := range primarySub.Vertices() {
		if bv, ok := baseSub.Vertex(v.Pkg.Name); ok {
			prod *= SimP(bv.Pkg, v.Pkg)
		}
	}
	return prod
}

// Compatible reports Comp == 1.
func Compatible(baseSub, primarySub *semgraph.Graph) bool {
	return Comp(baseSub, primarySub) == 1
}
