package similarity

import (
	"math"
	"testing"
	"testing/quick"

	"expelliarmus/internal/pkgmeta"
	"expelliarmus/internal/semgraph"
)

var base = pkgmeta.BaseAttrs{Type: "linux", Distro: "ubuntu", Version: "16.04", Arch: "x86_64"}

func pkg(name, ver, arch string, size int64) pkgmeta.Package {
	return pkgmeta.Package{
		Name: name, Version: ver, Arch: arch, Distro: "ubuntu", InstalledSize: size,
	}
}

func TestSimPIdentical(t *testing.T) {
	p := pkg("redis", "3.0", "amd64", 100)
	if got := SimP(p, p); got != 1 {
		t.Fatalf("SimP(p,p) = %v", got)
	}
}

func TestSimPNameMismatch(t *testing.T) {
	if got := SimP(pkg("a", "1", "amd64", 1), pkg("b", "1", "amd64", 1)); got != 0 {
		t.Fatalf("SimP different names = %v", got)
	}
}

func TestSimPVersionDegradation(t *testing.T) {
	a := pkg("x", "2.4", "amd64", 1)
	sameMajor := pkg("x", "2.9", "amd64", 1)
	diffMajor := pkg("x", "3.0", "amd64", 1)
	if got := SimP(a, sameMajor); got != 0.5 {
		t.Fatalf("same major = %v, want 0.5", got)
	}
	if got := SimP(a, diffMajor); got != 0.25 {
		t.Fatalf("different major = %v, want 0.25", got)
	}
}

func TestSimPArchAll(t *testing.T) {
	amd := pkg("x", "1", "amd64", 1)
	all := pkg("x", "1", pkgmeta.ArchAll, 1)
	arm := pkg("x", "1", "arm64", 1)
	if got := SimP(amd, all); got != 1 {
		t.Fatalf("amd64 vs all = %v (portable packages are compatible)", got)
	}
	if got := SimP(amd, arm); got != 0 {
		t.Fatalf("amd64 vs arm64 = %v, want 0", got)
	}
}

func TestSimPDistroMismatch(t *testing.T) {
	a := pkg("x", "1", "amd64", 1)
	b := a
	b.Distro = "fedora"
	if got := SimP(a, b); got != 0.5 {
		t.Fatalf("distro mismatch = %v, want 0.5", got)
	}
}

func TestSimPSymmetric(t *testing.T) {
	a := pkg("x", "2.4", "amd64", 10)
	b := pkg("x", "2.7", pkgmeta.ArchAll, 20)
	if SimP(a, b) != SimP(b, a) {
		t.Fatal("SimP not symmetric")
	}
}

func TestSimBI(t *testing.T) {
	if got := SimBI(base, base); got != 1 {
		t.Fatalf("SimBI identical = %v", got)
	}
	other := base
	other.Arch = "arm64"
	if got := SimBI(base, other); got != 0 {
		t.Fatalf("SimBI arch mismatch = %v", got)
	}
	ver := base
	ver.Version = "16.10"
	if got := SimBI(base, ver); got != 0.5 {
		t.Fatalf("SimBI same major version = %v, want 0.5", got)
	}
	distro := base
	distro.Distro = "debian"
	if got := SimBI(base, distro); got != 0 {
		t.Fatalf("SimBI distro mismatch = %v", got)
	}
}

func TestSimSize(t *testing.T) {
	a := pkg("x", "1", "amd64", 30)
	b := pkg("x", "1", "amd64", 60)
	if got := SimSize(a, b, 120); got != 0.5 {
		t.Fatalf("SimSize = %v, want 0.5 (max 60 / 120)", got)
	}
	if got := SimSize(a, b, 0); got != 0 {
		t.Fatalf("SimSize with zero max = %v", got)
	}
}

func graphOf(primaries []string, pkgs ...pkgmeta.Package) *semgraph.Graph {
	return semgraph.Build(base, pkgs, primaries)
}

func TestSimGSelfIsOne(t *testing.T) {
	g := graphOf(nil, pkg("a", "1", "amd64", 100), pkg("b", "1", "amd64", 50))
	if got := SimG(g, g); math.Abs(got-1) > 1e-12 {
		t.Fatalf("SimG(g,g) = %v", got)
	}
}

func TestSimGDisjointIsZero(t *testing.T) {
	g1 := graphOf(nil, pkg("a", "1", "amd64", 100))
	g2 := graphOf(nil, pkg("b", "1", "amd64", 100))
	if got := SimG(g1, g2); got != 0 {
		t.Fatalf("SimG disjoint = %v", got)
	}
}

func TestSimGBaseMismatchZero(t *testing.T) {
	g1 := graphOf(nil, pkg("a", "1", "amd64", 100))
	otherBase := base
	otherBase.Distro = "debian"
	g2 := semgraph.Build(otherBase, []pkgmeta.Package{pkg("a", "1", "amd64", 100)}, nil)
	if got := SimG(g1, g2); got != 0 {
		t.Fatalf("SimG across distros = %v", got)
	}
}

func TestSimGWeighting(t *testing.T) {
	// Shared huge package, unique tiny one: similarity stays high.
	shared := pkg("big", "1", "amd64", 1000)
	tiny := pkg("tiny", "1", "amd64", 10)
	g1 := graphOf(nil, shared)
	g2 := graphOf(nil, shared, tiny)
	high := SimG(g1, g2)
	if high < 0.9 {
		t.Fatalf("SimG with tiny addition = %v, want > 0.9", high)
	}
	// Unique huge package: similarity drops substantially.
	huge := pkg("huge", "1", "amd64", 2000)
	g3 := graphOf(nil, shared, huge)
	low := SimG(g1, g3)
	if low >= high {
		t.Fatalf("SimG should drop with large unique package: %v >= %v", low, high)
	}
	if low > 0.5 {
		t.Fatalf("SimG with dominant unique package = %v, want <= 0.5", low)
	}
}

func TestSimGSymmetric(t *testing.T) {
	g1 := graphOf(nil, pkg("a", "1", "amd64", 100), pkg("b", "2", "amd64", 70))
	g2 := graphOf(nil, pkg("a", "1", "amd64", 100), pkg("c", "1", "amd64", 30))
	if math.Abs(SimG(g1, g2)-SimG(g2, g1)) > 1e-12 {
		t.Fatal("SimG not symmetric")
	}
}

func TestSimGEmptyGraphs(t *testing.T) {
	g1 := graphOf(nil)
	g2 := graphOf(nil)
	if got := SimG(g1, g2); got != 1 {
		t.Fatalf("SimG of empty graphs with equal base = %v, want 1 (pure base similarity)", got)
	}
}

func TestCompVacuousAndExact(t *testing.T) {
	baseSub := graphOf(nil, pkg("libc6", "2.23", "amd64", 100))
	// No homonyms: vacuously compatible.
	ps1 := graphOf([]string{"redis"}, pkg("redis", "3.0", "amd64", 10))
	if !Compatible(baseSub, ps1) {
		t.Fatal("disjoint subgraphs should be compatible")
	}
	// Homonym with identical attributes: compatible.
	ps2 := graphOf([]string{"redis"},
		pkg("redis", "3.0", "amd64", 10), pkg("libc6", "2.23", "amd64", 100))
	if !Compatible(baseSub, ps2) {
		t.Fatal("identical homonym should be compatible")
	}
	// Homonym with different version: incompatible.
	ps3 := graphOf([]string{"redis"},
		pkg("redis", "3.0", "amd64", 10), pkg("libc6", "2.24", "amd64", 100))
	if Compatible(baseSub, ps3) {
		t.Fatal("version-skewed homonym should be incompatible")
	}
	if got := Comp(baseSub, ps3); got != 0.5 {
		t.Fatalf("Comp = %v, want 0.5", got)
	}
}

func TestVersionSim(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"1.0", "1.0", 1}, {"1.0", "1.9", 0.5}, {"1.0", "2.0", 0.25},
		{"2.4-ubuntu1", "2.5", 0.5}, {"", "", 1},
	}
	for _, c := range cases {
		if got := VersionSim(c.a, c.b); got != c.want {
			t.Errorf("VersionSim(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestQuickMetricBounds: all metrics stay in [0,1] and SimP symmetric for
// arbitrary attribute combinations.
func TestQuickMetricBounds(t *testing.T) {
	vers := []string{"1.0", "1.5", "2.0", "3.1-a", ""}
	archs := []string{"amd64", "arm64", pkgmeta.ArchAll}
	distros := []string{"ubuntu", "debian"}
	err := quick.Check(func(n1, n2, v1, v2, a1, a2, d1, d2, s1, s2 uint8) bool {
		p1 := pkgmeta.Package{
			Name: string(rune('a' + n1%3)), Version: vers[int(v1)%len(vers)],
			Arch: archs[int(a1)%len(archs)], Distro: distros[int(d1)%len(distros)],
			InstalledSize: int64(s1),
		}
		p2 := pkgmeta.Package{
			Name: string(rune('a' + n2%3)), Version: vers[int(v2)%len(vers)],
			Arch: archs[int(a2)%len(archs)], Distro: distros[int(d2)%len(distros)],
			InstalledSize: int64(s2),
		}
		sp := SimP(p1, p2)
		if sp < 0 || sp > 1 || sp != SimP(p2, p1) {
			return false
		}
		ss := SimSize(p1, p2, 255)
		return ss >= 0 && ss <= 1
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

// TestQuickSimGBounds: SimG in [0,1] for random graphs over a small
// package pool.
func TestQuickSimGBounds(t *testing.T) {
	pool := []pkgmeta.Package{
		pkg("a", "1.0", "amd64", 100), pkg("b", "2.0", "amd64", 300),
		pkg("c", "1.0", pkgmeta.ArchAll, 50), pkg("d", "1.1", "amd64", 700),
		pkg("e", "2.2", "amd64", 10),
	}
	err := quick.Check(func(m1, m2 uint8) bool {
		var s1, s2 []pkgmeta.Package
		for i, p := range pool {
			if m1&(1<<i) != 0 {
				s1 = append(s1, p)
			}
			if m2&(1<<i) != 0 {
				s2 = append(s2, p)
			}
		}
		g1, g2 := graphOf(nil, s1...), graphOf(nil, s2...)
		sim := SimG(g1, g2)
		if sim < 0 || sim > 1 {
			return false
		}
		return math.Abs(sim-SimG(g2, g1)) < 1e-12
	}, &quick.Config{MaxCount: 256})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSimG(b *testing.B) {
	var pkgs1, pkgs2 []pkgmeta.Package
	for i := 0; i < 150; i++ {
		p := pkg("pkg"+string(rune('a'+i%26))+string(rune('0'+i/26)), "1.0", "amd64", int64(i+1)*10)
		pkgs1 = append(pkgs1, p)
		if i%3 != 0 {
			pkgs2 = append(pkgs2, p)
		}
	}
	g1, g2 := graphOf(nil, pkgs1...), graphOf(nil, pkgs2...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SimG(g1, g2)
	}
}
