// Package metadb implements a small embedded, ordered key/value storage
// engine with named buckets, range cursors and snapshot persistence. It
// stands in for the SQLite database the paper uses for VMI metadata
// (Sec. V: "we used the SQLite database engine, suitable for managing VMI
// meta-data due to its self-contained, serverless, and zero-configuration
// characteristics") and for the Hemera baseline's hybrid design, which
// stores small files inside the database and large files on the filesystem.
//
// The engine is a classic B+tree: internal nodes hold separator keys and
// children, leaves hold key/value pairs and are chained for in-order
// scans. Inserts split full nodes; deletes are lazy (no eager rebalancing,
// like several production engines that defer structural cleanup to
// compaction), which keeps every tree invariant needed by readers while
// simplifying the write path. Snapshot/Load give durable round trips, and
// an optional Journal observes every committed mutation — the hook the
// disk backend's metadata write-ahead log (internal/metawal) uses to make
// Sync O(delta) instead of a whole-image rewrite.
package metadb

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// PageSize is the modeled database page size, matching simio's cost model.
const PageSize = 4096

// maxKeys bounds the number of keys per node; nodes split above it.
const maxKeys = 64

// OpKind labels one committed mutation reported to a Journal.
type OpKind uint8

// The journaled mutation kinds. Every path that changes durable database
// contents maps onto exactly one of them, so a journal is a complete
// operation history: replaying it against the database's prior state
// reproduces equal contents (the property the metadata WAL relies on).
const (
	OpPut          OpKind = iota + 1 // Key stored with Value
	OpDelete                         // Key removed
	OpCreateBucket                   // bucket created (no keys yet)
	OpDropBucket                     // bucket and all contents removed
)

// Op describes one committed mutation. Key and Value alias the caller's
// slices and are only valid for the duration of the Journal call — a
// journal that retains them must copy (the metadata WAL encodes them into
// its own buffer immediately).
type Op struct {
	Kind   OpKind
	Bucket string
	Key    []byte
	Value  []byte // OpPut only
}

// Journal observes committed mutations. It is invoked after the mutation
// is applied, while the mutated bucket's lock is still held, so the call
// order per bucket is exactly the apply order (a valid linearization for
// replay). The one exception is DeleteBucket, which holds only the
// bucket-directory lock: a DeleteBucket racing writers that still hold a
// handle to the doomed bucket may journal in an order that diverges from
// the live outcome (the stragglers' writes land in a detached tree), so
// journaled databases must not drop a bucket while its writers are still
// running — the repository never does. The journal must not touch the
// database and should return quickly — every writer on the bucket waits
// behind it.
type Journal func(Op)

// DB is a collection of named buckets. It is safe for concurrent use:
// locking is per bucket (each tree carries its own RWMutex), so readers and
// writers of different buckets — e.g. package-existence checks and base
// lookups from concurrent publishes — never serialise on one lock. The
// outer mutex only guards the bucket directory itself.
type DB struct {
	mu      sync.RWMutex // guards the buckets map, not bucket contents
	buckets map[string]*tree
	journal atomic.Pointer[Journal]
}

// SetJournal installs (or, with nil, removes) the mutation journal.
// Installing a journal does not emit ops for existing contents; callers
// that need a baseline take a Snapshot first (the metadata WAL's
// snapshot+log split).
func (db *DB) SetJournal(j Journal) {
	if j == nil {
		db.journal.Store(nil)
		return
	}
	db.journal.Store(&j)
}

// record emits one op to the installed journal, if any.
func (db *DB) record(op Op) {
	if j := db.journal.Load(); j != nil {
		(*j)(op)
	}
}

// New returns an empty database.
func New() *DB {
	return &DB{buckets: make(map[string]*tree)}
}

// Bucket is a handle to one named keyspace.
type Bucket struct {
	db   *DB
	name string
	t    *tree
}

// CreateBucket returns the named bucket, creating it if needed. Only an
// actual creation is journaled — fetching an existing bucket mutates
// nothing.
func (db *DB) CreateBucket(name string) *Bucket {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.buckets[name]
	if !ok {
		t = newTree()
		db.buckets[name] = t
		db.record(Op{Kind: OpCreateBucket, Bucket: name})
	}
	return &Bucket{db: db, name: name, t: t}
}

// Bucket returns the named bucket or nil if it does not exist.
func (db *DB) Bucket(name string) *Bucket {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.buckets[name]
	if !ok {
		return nil
	}
	return &Bucket{db: db, name: name, t: t}
}

// DeleteBucket removes the named bucket and all its contents. Only the
// removal of a bucket that existed is journaled. When a journal is
// installed, DeleteBucket must not race writers holding a handle to this
// bucket (see Journal).
func (db *DB) DeleteBucket(name string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.buckets[name]; !ok {
		return
	}
	delete(db.buckets, name)
	db.record(Op{Kind: OpDropBucket, Bucket: name})
}

// Buckets returns all bucket names in sorted order.
func (db *DB) Buckets() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.buckets))
	for name := range db.buckets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Name returns the bucket's name.
func (b *Bucket) Name() string { return b.name }

// Put stores value under key, replacing any existing value. Key and value
// are copied.
func (b *Bucket) Put(key, value []byte) {
	b.t.mu.Lock()
	defer b.t.mu.Unlock()
	b.t.put(cloneBytes(key), cloneBytes(value))
	b.db.record(Op{Kind: OpPut, Bucket: b.name, Key: key, Value: value})
}

// PutIfAbsent stores value under key only when the key is not yet present,
// atomically, and reports whether it stored. It is the check-and-insert
// primitive concurrent publishes use so two uploads exporting the same
// package cannot both win.
func (b *Bucket) PutIfAbsent(key, value []byte) bool {
	b.t.mu.Lock()
	defer b.t.mu.Unlock()
	if _, ok := b.t.get(key); ok {
		return false
	}
	b.t.put(cloneBytes(key), cloneBytes(value))
	b.db.record(Op{Kind: OpPut, Bucket: b.name, Key: key, Value: value})
	return true
}

// Get returns the value stored under key. The returned slice must not be
// modified.
func (b *Bucket) Get(key []byte) ([]byte, bool) {
	b.t.mu.RLock()
	defer b.t.mu.RUnlock()
	return b.t.get(key)
}

// Update atomically rewrites the value under key: fn receives the current
// value (nil, false when absent) and returns the replacement plus whether
// to write it. The read-modify-write holds the bucket lock throughout, so
// no concurrent Put can interleave between fn's view and the write — the
// compare-and-rewrite primitive conditional record repointing (e.g. VMI
// rewiring) needs under striped commit locks. fn must not touch this
// bucket and must not retain old. Reports whether a write happened.
func (b *Bucket) Update(key []byte, fn func(old []byte, ok bool) ([]byte, bool)) bool {
	b.t.mu.Lock()
	defer b.t.mu.Unlock()
	old, ok := b.t.get(key)
	val, write := fn(old, ok)
	if !write {
		return false
	}
	b.t.put(cloneBytes(key), cloneBytes(val))
	b.db.record(Op{Kind: OpPut, Bucket: b.name, Key: key, Value: val})
	return true
}

// Delete removes key. It reports whether the key was present. Only a
// deletion that removed something is journaled.
func (b *Bucket) Delete(key []byte) bool {
	b.t.mu.Lock()
	defer b.t.mu.Unlock()
	if !b.t.delete(key) {
		return false
	}
	b.db.record(Op{Kind: OpDelete, Bucket: b.name, Key: key})
	return true
}

// Len returns the number of keys in the bucket.
func (b *Bucket) Len() int {
	b.t.mu.RLock()
	defer b.t.mu.RUnlock()
	return b.t.size
}

// PayloadBytes returns the total key+value bytes stored in the bucket.
func (b *Bucket) PayloadBytes() int64 {
	b.t.mu.RLock()
	defer b.t.mu.RUnlock()
	return b.t.payload
}

// ForEach calls fn for every key/value pair in ascending key order. If fn
// returns false, iteration stops. The slices must not be modified, and fn
// must not write to this bucket (it runs under the bucket's read lock).
func (b *Bucket) ForEach(fn func(key, value []byte) bool) {
	b.t.mu.RLock()
	defer b.t.mu.RUnlock()
	for leaf := b.t.firstLeaf(); leaf != nil; leaf = leaf.next {
		for i, k := range leaf.keys {
			if !fn(k, leaf.vals[i]) {
				return
			}
		}
	}
}

// Cursor returns a cursor positioned before the first key.
func (b *Bucket) Cursor() *Cursor {
	return &Cursor{bucket: b}
}

// Cursor iterates a bucket in ascending key order. The cursor observes a
// live tree; interleaving writes with iteration is not supported.
type Cursor struct {
	bucket *Bucket
	leaf   *node
	idx    int
}

// First positions at the smallest key and returns it, or nil,nil when the
// bucket is empty.
func (c *Cursor) First() (key, value []byte) {
	c.bucket.t.mu.RLock()
	defer c.bucket.t.mu.RUnlock()
	c.leaf = c.bucket.t.firstLeaf()
	c.idx = 0
	c.skipEmpty()
	return c.current()
}

// Seek positions at the first key >= target and returns it, or nil,nil when
// no such key exists.
func (c *Cursor) Seek(target []byte) (key, value []byte) {
	c.bucket.t.mu.RLock()
	defer c.bucket.t.mu.RUnlock()
	leaf := c.bucket.t.leafFor(target)
	idx := sort.Search(len(leaf.keys), func(i int) bool {
		return bytes.Compare(leaf.keys[i], target) >= 0
	})
	c.leaf, c.idx = leaf, idx
	c.skipEmpty()
	return c.current()
}

// Next advances to the next key and returns it, or nil,nil at the end.
func (c *Cursor) Next() (key, value []byte) {
	c.bucket.t.mu.RLock()
	defer c.bucket.t.mu.RUnlock()
	if c.leaf == nil {
		return nil, nil
	}
	c.idx++
	c.skipEmpty()
	return c.current()
}

func (c *Cursor) skipEmpty() {
	for c.leaf != nil && c.idx >= len(c.leaf.keys) {
		c.leaf = c.leaf.next
		c.idx = 0
	}
}

func (c *Cursor) current() (key, value []byte) {
	if c.leaf == nil {
		return nil, nil
	}
	return c.leaf.keys[c.idx], c.leaf.vals[c.idx]
}

// --- B+tree internals ---

type node struct {
	leaf     bool
	keys     [][]byte
	vals     [][]byte // leaves only
	children []*node  // internal nodes only
	next     *node    // leaf chain
}

type tree struct {
	mu      sync.RWMutex // per-bucket lock; guards everything below
	root    *node
	size    int
	payload int64
}

func newTree() *tree {
	return &tree{root: &node{leaf: true}}
}

func (t *tree) firstLeaf() *node {
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	return n
}

// leafFor descends to the leaf that would contain key.
func (t *tree) leafFor(key []byte) *node {
	n := t.root
	for !n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool {
			return bytes.Compare(key, n.keys[i]) < 0
		})
		n = n.children[i]
	}
	return n
}

func (t *tree) get(key []byte) ([]byte, bool) {
	leaf := t.leafFor(key)
	i := sort.Search(len(leaf.keys), func(i int) bool {
		return bytes.Compare(leaf.keys[i], key) >= 0
	})
	if i < len(leaf.keys) && bytes.Equal(leaf.keys[i], key) {
		return leaf.vals[i], true
	}
	return nil, false
}

func (t *tree) put(key, value []byte) {
	promoted, right := t.insert(t.root, key, value)
	if right != nil {
		t.root = &node{
			keys:     [][]byte{promoted},
			children: []*node{t.root, right},
		}
	}
}

// insert adds key/value below n. When n splits, it returns the separator
// key to promote and the new right sibling.
func (t *tree) insert(n *node, key, value []byte) (promoted []byte, right *node) {
	if n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool {
			return bytes.Compare(n.keys[i], key) >= 0
		})
		if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
			t.payload += int64(len(value)) - int64(len(n.vals[i]))
			n.vals[i] = value
			return nil, nil
		}
		n.keys = insertAt(n.keys, i, key)
		n.vals = insertAt(n.vals, i, value)
		t.size++
		t.payload += int64(len(key) + len(value))
		if len(n.keys) > maxKeys {
			return t.splitLeaf(n)
		}
		return nil, nil
	}
	ci := sort.Search(len(n.keys), func(i int) bool {
		return bytes.Compare(key, n.keys[i]) < 0
	})
	promoted, right = t.insert(n.children[ci], key, value)
	if right == nil {
		return nil, nil
	}
	n.keys = insertAt(n.keys, ci, promoted)
	n.children = insertNodeAt(n.children, ci+1, right)
	if len(n.keys) > maxKeys {
		return t.splitInternal(n)
	}
	return nil, nil
}

func (t *tree) splitLeaf(n *node) ([]byte, *node) {
	mid := len(n.keys) / 2
	right := &node{
		leaf: true,
		keys: append([][]byte{}, n.keys[mid:]...),
		vals: append([][]byte{}, n.vals[mid:]...),
		next: n.next,
	}
	n.keys = n.keys[:mid:mid]
	n.vals = n.vals[:mid:mid]
	n.next = right
	return right.keys[0], right
}

func (t *tree) splitInternal(n *node) ([]byte, *node) {
	mid := len(n.keys) / 2
	promoted := n.keys[mid]
	right := &node{
		keys:     append([][]byte{}, n.keys[mid+1:]...),
		children: append([]*node{}, n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return promoted, right
}

// delete removes key from the tree. Removal is lazy: leaves may become
// empty and are skipped by readers; separator keys in internal nodes remain
// valid separators.
func (t *tree) delete(key []byte) bool {
	leaf := t.leafFor(key)
	i := sort.Search(len(leaf.keys), func(i int) bool {
		return bytes.Compare(leaf.keys[i], key) >= 0
	})
	if i >= len(leaf.keys) || !bytes.Equal(leaf.keys[i], key) {
		return false
	}
	t.payload -= int64(len(leaf.keys[i]) + len(leaf.vals[i]))
	leaf.keys = append(leaf.keys[:i], leaf.keys[i+1:]...)
	leaf.vals = append(leaf.vals[:i], leaf.vals[i+1:]...)
	t.size--
	return true
}

func insertAt(s [][]byte, i int, v []byte) [][]byte {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertNodeAt(s []*node, i int, v *node) []*node {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func cloneBytes(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// --- persistence ---

var snapshotMagic = []byte("EXPMDB1\n")

// Snapshot serialises the whole database to a byte image. The format is
// logical (buckets and sorted entries), so Load reproduces equal contents
// regardless of the original tree shape.
func (db *DB) Snapshot() []byte {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var buf bytes.Buffer
	buf.Write(snapshotMagic)
	names := make([]string, 0, len(db.buckets))
	for name := range db.buckets {
		names = append(names, name)
	}
	sort.Strings(names)
	writeUvarint(&buf, uint64(len(names)))
	for _, name := range names {
		t := db.buckets[name]
		writeBytes(&buf, []byte(name))
		t.mu.RLock()
		writeUvarint(&buf, uint64(t.size))
		for leaf := t.firstLeaf(); leaf != nil; leaf = leaf.next {
			for i, k := range leaf.keys {
				writeBytes(&buf, k)
				writeBytes(&buf, leaf.vals[i])
			}
		}
		t.mu.RUnlock()
	}
	return buf.Bytes()
}

// Load restores a database from a Snapshot image.
func Load(image []byte) (*DB, error) {
	r := bytes.NewReader(image)
	magic := make([]byte, len(snapshotMagic))
	if _, err := r.Read(magic); err != nil || !bytes.Equal(magic, snapshotMagic) {
		return nil, fmt.Errorf("metadb: bad snapshot magic")
	}
	db := New()
	nBuckets, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("metadb: corrupt snapshot: %w", err)
	}
	for i := uint64(0); i < nBuckets; i++ {
		name, err := readBytes(r)
		if err != nil {
			return nil, fmt.Errorf("metadb: corrupt bucket name: %w", err)
		}
		b := db.CreateBucket(string(name))
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("metadb: corrupt bucket size: %w", err)
		}
		for j := uint64(0); j < n; j++ {
			k, err := readBytes(r)
			if err != nil {
				return nil, fmt.Errorf("metadb: corrupt key: %w", err)
			}
			v, err := readBytes(r)
			if err != nil {
				return nil, fmt.Errorf("metadb: corrupt value: %w", err)
			}
			b.Put(k, v)
		}
	}
	return db, nil
}

func writeUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	buf.Write(tmp[:n])
}

func writeBytes(buf *bytes.Buffer, b []byte) {
	writeUvarint(buf, uint64(len(b)))
	buf.Write(b)
}

func readBytes(r *bytes.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Len()) {
		return nil, fmt.Errorf("length %d exceeds remaining %d", n, r.Len())
	}
	out := make([]byte, n)
	if n == 0 {
		return out, nil // bytes.Reader returns EOF even for empty reads
	}
	if _, err := io.ReadFull(r, out); err != nil {
		return nil, err
	}
	return out, nil
}

// SizeBytes models the on-disk size of the database file: payload bytes
// plus per-entry slot overhead, rounded up to whole pages at a typical
// B+tree fill factor. This is the quantity Hemera's repository size
// accounting includes in Fig. 3.
func (db *DB) SizeBytes() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	const slotOverhead = 16
	const fillFactor = 0.92
	var payload int64
	for _, t := range db.buckets {
		t.mu.RLock()
		payload += t.payload + int64(t.size)*slotOverhead
		t.mu.RUnlock()
	}
	if payload == 0 {
		return PageSize // empty DB still occupies its header page
	}
	pages := int64(float64(payload)/(PageSize*fillFactor)) + 1
	return (pages + 1) * PageSize // +1 header page
}
