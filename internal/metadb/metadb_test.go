package metadb

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPutGetDelete(t *testing.T) {
	db := New()
	b := db.CreateBucket("images")
	b.Put([]byte("k1"), []byte("v1"))
	b.Put([]byte("k2"), []byte("v2"))

	if v, ok := b.Get([]byte("k1")); !ok || string(v) != "v1" {
		t.Fatalf("Get k1 = %q,%v", v, ok)
	}
	if _, ok := b.Get([]byte("nope")); ok {
		t.Fatal("Get of absent key succeeded")
	}
	b.Put([]byte("k1"), []byte("v1-replaced"))
	if v, _ := b.Get([]byte("k1")); string(v) != "v1-replaced" {
		t.Fatalf("overwrite failed: %q", v)
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
	if !b.Delete([]byte("k1")) {
		t.Fatal("Delete reported absent")
	}
	if b.Delete([]byte("k1")) {
		t.Fatal("second Delete reported present")
	}
	if _, ok := b.Get([]byte("k1")); ok {
		t.Fatal("Get after Delete succeeded")
	}
	if b.Len() != 1 {
		t.Fatalf("Len after delete = %d, want 1", b.Len())
	}
}

func TestPutCopiesKeyAndValue(t *testing.T) {
	db := New()
	b := db.CreateBucket("x")
	k := []byte("key")
	v := []byte("val")
	b.Put(k, v)
	k[0], v[0] = 'X', 'X'
	if got, _ := b.Get([]byte("key")); string(got) != "val" {
		t.Fatalf("value aliased: %q", got)
	}
}

func TestBucketManagement(t *testing.T) {
	db := New()
	db.CreateBucket("b")
	db.CreateBucket("a")
	if db.Bucket("missing") != nil {
		t.Fatal("Bucket returned handle for missing bucket")
	}
	got := db.Buckets()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Buckets = %v", got)
	}
	// CreateBucket on an existing name returns the same contents.
	db.Bucket("a").Put([]byte("k"), []byte("v"))
	if v, ok := db.CreateBucket("a").Get([]byte("k")); !ok || string(v) != "v" {
		t.Fatal("CreateBucket lost existing contents")
	}
	db.DeleteBucket("a")
	if db.Bucket("a") != nil {
		t.Fatal("bucket survived DeleteBucket")
	}
}

func TestBucketIsolation(t *testing.T) {
	db := New()
	a := db.CreateBucket("a")
	b := db.CreateBucket("b")
	a.Put([]byte("k"), []byte("from-a"))
	b.Put([]byte("k"), []byte("from-b"))
	if v, _ := a.Get([]byte("k")); string(v) != "from-a" {
		t.Fatalf("bucket a sees %q", v)
	}
	if v, _ := b.Get([]byte("k")); string(v) != "from-b" {
		t.Fatalf("bucket b sees %q", v)
	}
}

func fill(b *Bucket, n int, seed int64) map[string]string {
	rng := rand.New(rand.NewSource(seed))
	want := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%06d", rng.Intn(1000000))
		v := fmt.Sprintf("val-%d", i)
		b.Put([]byte(k), []byte(v))
		want[k] = v
	}
	return want
}

func TestManyKeysSplitAndGet(t *testing.T) {
	db := New()
	b := db.CreateBucket("big")
	want := fill(b, 20000, 42)
	if b.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", b.Len(), len(want))
	}
	for k, v := range want {
		got, ok := b.Get([]byte(k))
		if !ok || string(got) != v {
			t.Fatalf("Get(%q) = %q,%v want %q", k, got, ok, v)
		}
	}
}

func TestForEachOrdered(t *testing.T) {
	db := New()
	b := db.CreateBucket("ord")
	want := fill(b, 5000, 43)
	keys := make([]string, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	i := 0
	b.ForEach(func(k, v []byte) bool {
		if string(k) != keys[i] {
			t.Fatalf("position %d: got %q want %q", i, k, keys[i])
		}
		if string(v) != want[keys[i]] {
			t.Fatalf("value mismatch at %q", k)
		}
		i++
		return true
	})
	if i != len(keys) {
		t.Fatalf("visited %d keys, want %d", i, len(keys))
	}
}

func TestForEachEarlyStop(t *testing.T) {
	db := New()
	b := db.CreateBucket("stop")
	fill(b, 100, 44)
	count := 0
	b.ForEach(func(k, v []byte) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("visited %d, want 10", count)
	}
}

func TestCursorFirstNext(t *testing.T) {
	db := New()
	b := db.CreateBucket("cur")
	want := fill(b, 3000, 45)
	keys := make([]string, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	c := b.Cursor()
	i := 0
	for k, _ := c.First(); k != nil; k, _ = c.Next() {
		if string(k) != keys[i] {
			t.Fatalf("cursor pos %d: got %q want %q", i, k, keys[i])
		}
		i++
	}
	if i != len(keys) {
		t.Fatalf("cursor visited %d, want %d", i, len(keys))
	}
}

func TestCursorSeek(t *testing.T) {
	db := New()
	b := db.CreateBucket("seek")
	for i := 0; i < 100; i += 2 { // even keys only
		b.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	c := b.Cursor()
	if k, _ := c.Seek([]byte("k051")); string(k) != "k052" {
		t.Fatalf("Seek(k051) = %q, want k052", k)
	}
	if k, _ := c.Seek([]byte("k052")); string(k) != "k052" {
		t.Fatalf("Seek(k052) = %q, want exact match", k)
	}
	if k, _ := c.Seek([]byte("k000")); string(k) != "k000" {
		t.Fatalf("Seek(k000) = %q", k)
	}
	if k, _ := c.Seek([]byte("zzz")); k != nil {
		t.Fatalf("Seek past end = %q, want nil", k)
	}
}

func TestCursorEmptyBucket(t *testing.T) {
	db := New()
	b := db.CreateBucket("empty")
	c := b.Cursor()
	if k, v := c.First(); k != nil || v != nil {
		t.Fatal("First on empty bucket returned a key")
	}
	if k, _ := c.Next(); k != nil {
		t.Fatal("Next on exhausted cursor returned a key")
	}
}

func TestDeleteHeavyThenIterate(t *testing.T) {
	db := New()
	b := db.CreateBucket("dh")
	const n = 5000
	for i := 0; i < n; i++ {
		b.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("v"))
	}
	// Delete every key not divisible by 7, leaving sparse leaves (lazy
	// deletion must not confuse cursors).
	for i := 0; i < n; i++ {
		if i%7 != 0 {
			b.Delete([]byte(fmt.Sprintf("k%05d", i)))
		}
	}
	want := 0
	for i := 0; i < n; i += 7 {
		want++
	}
	if b.Len() != want {
		t.Fatalf("Len = %d, want %d", b.Len(), want)
	}
	seen := 0
	prev := ""
	b.ForEach(func(k, v []byte) bool {
		if prev != "" && string(k) <= prev {
			t.Fatalf("iteration out of order: %q after %q", k, prev)
		}
		prev = string(k)
		seen++
		return true
	})
	if seen != want {
		t.Fatalf("iterated %d, want %d", seen, want)
	}
	// Seek still works across emptied leaves.
	c := b.Cursor()
	if k, _ := c.Seek([]byte("k00001")); string(k) != "k00007" {
		t.Fatalf("Seek over deleted range = %q, want k00007", k)
	}
}

func TestPayloadBytesTracking(t *testing.T) {
	db := New()
	b := db.CreateBucket("pb")
	b.Put([]byte("abc"), []byte("12345"))
	if got := b.PayloadBytes(); got != 8 {
		t.Fatalf("PayloadBytes = %d, want 8", got)
	}
	b.Put([]byte("abc"), []byte("1")) // replace shrinks
	if got := b.PayloadBytes(); got != 4 {
		t.Fatalf("PayloadBytes after replace = %d, want 4", got)
	}
	b.Delete([]byte("abc"))
	if got := b.PayloadBytes(); got != 0 {
		t.Fatalf("PayloadBytes after delete = %d, want 0", got)
	}
}

func TestSnapshotLoadRoundTrip(t *testing.T) {
	db := New()
	a := db.CreateBucket("alpha")
	wantA := fill(a, 2000, 46)
	db.CreateBucket("empty")
	bb := db.CreateBucket("beta")
	bb.Put([]byte{0x00}, []byte{})
	bb.Put([]byte{}, []byte("empty-key"))

	img := db.Snapshot()
	got, err := Load(img)
	if err != nil {
		t.Fatal(err)
	}
	if names := got.Buckets(); len(names) != 3 {
		t.Fatalf("Buckets = %v", names)
	}
	ga := got.Bucket("alpha")
	if ga.Len() != len(wantA) {
		t.Fatalf("alpha Len = %d, want %d", ga.Len(), len(wantA))
	}
	for k, v := range wantA {
		if gv, ok := ga.Get([]byte(k)); !ok || string(gv) != v {
			t.Fatalf("alpha[%q] = %q,%v", k, gv, ok)
		}
	}
	if v, ok := got.Bucket("beta").Get([]byte{}); !ok || string(v) != "empty-key" {
		t.Fatal("empty key lost in round trip")
	}
	if got.Bucket("empty").Len() != 0 {
		t.Fatal("empty bucket gained keys")
	}
}

func TestLoadRejectsCorruptImages(t *testing.T) {
	if _, err := Load([]byte("not a snapshot")); err == nil {
		t.Fatal("Load accepted garbage")
	}
	db := New()
	db.CreateBucket("x").Put([]byte("k"), []byte("v"))
	img := db.Snapshot()
	if _, err := Load(img[:len(img)-3]); err == nil {
		t.Fatal("Load accepted truncated image")
	}
}

func TestSizeBytesModel(t *testing.T) {
	db := New()
	if db.SizeBytes() != PageSize {
		t.Fatalf("empty DB SizeBytes = %d, want one page", db.SizeBytes())
	}
	b := db.CreateBucket("files")
	payload := 0
	for i := 0; i < 1000; i++ {
		v := bytes.Repeat([]byte{byte(i)}, 512)
		k := fmt.Sprintf("file-%04d", i)
		b.Put([]byte(k), v)
		payload += len(k) + len(v)
	}
	size := db.SizeBytes()
	if size < int64(payload) {
		t.Fatalf("SizeBytes %d below payload %d", size, payload)
	}
	if size > int64(payload)*2 {
		t.Fatalf("SizeBytes %d more than 2x payload %d", size, payload)
	}
	if size%PageSize != 0 {
		t.Fatalf("SizeBytes %d not page aligned", size)
	}
}

// TestQuickOracle drives random put/delete/get sequences against a map
// oracle, then verifies full ordered iteration.
func TestQuickOracle(t *testing.T) {
	err := quick.Check(func(ops []struct {
		Key byte
		Val uint16
		Del bool
	}) bool {
		db := New()
		b := db.CreateBucket("oracle")
		oracle := map[string]string{}
		for _, op := range ops {
			k := fmt.Sprintf("k%03d", op.Key)
			if op.Del {
				delete(oracle, k)
				b.Delete([]byte(k))
			} else {
				v := fmt.Sprintf("v%d", op.Val)
				oracle[k] = v
				b.Put([]byte(k), []byte(v))
			}
		}
		if b.Len() != len(oracle) {
			return false
		}
		for k, v := range oracle {
			got, ok := b.Get([]byte(k))
			if !ok || string(got) != v {
				return false
			}
		}
		keys := make([]string, 0, len(oracle))
		for k := range oracle {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		i := 0
		good := true
		b.ForEach(func(k, v []byte) bool {
			if i >= len(keys) || string(k) != keys[i] {
				good = false
				return false
			}
			i++
			return true
		})
		return good && i == len(keys)
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Fatal(err)
	}
}

// TestQuickSnapshotRoundTrip: Snapshot→Load preserves exact contents for
// arbitrary key/value sets.
func TestQuickSnapshotRoundTrip(t *testing.T) {
	err := quick.Check(func(pairs map[string][]byte) bool {
		db := New()
		b := db.CreateBucket("q")
		for k, v := range pairs {
			b.Put([]byte(k), v)
		}
		got, err := Load(db.Snapshot())
		if err != nil {
			return false
		}
		gb := got.Bucket("q")
		if gb.Len() != len(pairs) {
			return false
		}
		for k, v := range pairs {
			gv, ok := gb.Get([]byte(k))
			if !ok || !bytes.Equal(gv, v) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPut(b *testing.B) {
	db := New()
	bk := db.CreateBucket("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bk.Put([]byte(fmt.Sprintf("key-%09d", i)), []byte("value"))
	}
}

func BenchmarkGet(b *testing.B) {
	db := New()
	bk := db.CreateBucket("bench")
	for i := 0; i < 100000; i++ {
		bk.Put([]byte(fmt.Sprintf("key-%09d", i)), []byte("value"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bk.Get([]byte(fmt.Sprintf("key-%09d", i%100000)))
	}
}

// TestBucketUpdate pins the atomic read-modify-write primitive: fn sees
// the current value under the bucket lock, can decline the write, and a
// written value is stored under the key like a Put.
func TestBucketUpdate(t *testing.T) {
	db := New()
	db.CreateBucket("b")
	b := db.Bucket("b")

	// Absent key: fn sees (nil, false); declining writes nothing.
	wrote := b.Update([]byte("k"), func(old []byte, ok bool) ([]byte, bool) {
		if old != nil || ok {
			t.Fatalf("fn saw (%q, %v) for an absent key", old, ok)
		}
		return nil, false
	})
	if wrote {
		t.Fatal("declined update reported a write")
	}
	if _, ok := b.Get([]byte("k")); ok {
		t.Fatal("declined update stored a value")
	}

	// Conditional rewrite sees the current value and replaces it.
	b.Put([]byte("k"), []byte("v1"))
	wrote = b.Update([]byte("k"), func(old []byte, ok bool) ([]byte, bool) {
		if !ok || string(old) != "v1" {
			t.Fatalf("fn saw (%q, %v), want (v1, true)", old, ok)
		}
		return []byte("v2"), true
	})
	if !wrote {
		t.Fatal("accepted update reported no write")
	}
	if got, _ := b.Get([]byte("k")); string(got) != "v2" {
		t.Fatalf("value after update = %q, want v2", got)
	}
}
