package metadb

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentBuckets hammers distinct buckets from many goroutines —
// with per-bucket locking none of this may race or lose writes.
func TestConcurrentBuckets(t *testing.T) {
	db := New()
	const workers = 8
	const keys = 200
	for w := 0; w < workers; w++ {
		db.CreateBucket(fmt.Sprintf("bucket-%d", w))
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			b := db.Bucket(fmt.Sprintf("bucket-%d", w))
			for i := 0; i < keys; i++ {
				k := []byte(fmt.Sprintf("key-%04d", i))
				b.Put(k, []byte(fmt.Sprintf("val-%d-%d", w, i)))
				if _, ok := b.Get(k); !ok {
					t.Errorf("bucket-%d: key %s lost", w, k)
					return
				}
				if i%3 == 0 {
					b.Delete(k)
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		b := db.Bucket(fmt.Sprintf("bucket-%d", w))
		want := keys - (keys+2)/3
		if got := b.Len(); got != want {
			t.Errorf("bucket-%d: len = %d, want %d", w, got, want)
		}
	}
}

// TestConcurrentSharedBucket exercises one bucket from many goroutines with
// disjoint key ranges plus readers scanning throughout.
func TestConcurrentSharedBucket(t *testing.T) {
	db := New()
	b := db.CreateBucket("shared")
	const workers = 8
	const keys = 150
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				b.Put([]byte(fmt.Sprintf("w%02d-%04d", w, i)), []byte("v"))
			}
		}(w)
	}
	// Concurrent scans must observe a consistent tree at every instant.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			prev := []byte(nil)
			b.ForEach(func(k, v []byte) bool {
				if prev != nil && string(k) <= string(prev) {
					t.Errorf("scan out of order: %q after %q", k, prev)
					return false
				}
				prev = append(prev[:0], k...)
				return true
			})
		}
	}()
	wg.Wait()
	if got := b.Len(); got != workers*keys {
		t.Fatalf("len = %d, want %d", got, workers*keys)
	}
}

// TestPutIfAbsentRace races many goroutines inserting the same key: exactly
// one may win.
func TestPutIfAbsentRace(t *testing.T) {
	db := New()
	b := db.CreateBucket("race")
	const workers = 16
	var wg sync.WaitGroup
	wins := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if b.PutIfAbsent([]byte("contested"), []byte(fmt.Sprintf("winner-%d", w))) {
				wins <- w
			}
		}(w)
	}
	wg.Wait()
	close(wins)
	var winners []int
	for w := range wins {
		winners = append(winners, w)
	}
	if len(winners) != 1 {
		t.Fatalf("got %d winners %v, want exactly 1", len(winners), winners)
	}
	val, ok := b.Get([]byte("contested"))
	if !ok || string(val) != fmt.Sprintf("winner-%d", winners[0]) {
		t.Fatalf("stored value %q does not match winner %d", val, winners[0])
	}
}

func TestPutIfAbsentSequential(t *testing.T) {
	db := New()
	b := db.CreateBucket("b")
	if !b.PutIfAbsent([]byte("k"), []byte("v1")) {
		t.Fatal("first PutIfAbsent should store")
	}
	if b.PutIfAbsent([]byte("k"), []byte("v2")) {
		t.Fatal("second PutIfAbsent should not store")
	}
	if v, _ := b.Get([]byte("k")); string(v) != "v1" {
		t.Fatalf("value = %q, want v1", v)
	}
}

// TestSnapshotUnderTraffic takes snapshots while writers are active; every
// snapshot must load into a structurally valid database.
func TestSnapshotUnderTraffic(t *testing.T) {
	db := New()
	b := db.CreateBucket("traffic")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				b.Put([]byte(fmt.Sprintf("w%d-%06d", w, i)), []byte("payload"))
			}
		}(w)
	}
	for i := 0; i < 20; i++ {
		snap := db.Snapshot()
		restored, err := Load(snap)
		if err != nil {
			t.Fatalf("snapshot %d failed to load: %v", i, err)
		}
		rb := restored.Bucket("traffic")
		if rb == nil {
			t.Fatalf("snapshot %d lost bucket", i)
		}
	}
	close(stop)
	wg.Wait()
}
