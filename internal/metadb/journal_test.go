package metadb

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// recordingJournal captures ops with deep copies (the Op contract says
// slices are only valid during the call).
type recordingJournal struct {
	mu  sync.Mutex
	ops []Op
}

func (r *recordingJournal) record(op Op) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops = append(r.ops, Op{
		Kind:   op.Kind,
		Bucket: op.Bucket,
		Key:    append([]byte(nil), op.Key...),
		Value:  append([]byte(nil), op.Value...),
	})
}

// replay applies captured ops to a fresh database.
func (r *recordingJournal) replay() *DB {
	db := New()
	for _, op := range r.ops {
		switch op.Kind {
		case OpPut:
			db.CreateBucket(op.Bucket).Put(op.Key, op.Value)
		case OpDelete:
			db.CreateBucket(op.Bucket).Delete(op.Key)
		case OpCreateBucket:
			db.CreateBucket(op.Bucket)
		case OpDropBucket:
			db.DeleteBucket(op.Bucket)
		}
	}
	return db
}

// TestJournalEmitsOnlyCommittedMutations pins exactly which calls emit
// ops: every path that changes contents does, every no-op path does not.
func TestJournalEmitsOnlyCommittedMutations(t *testing.T) {
	db := New()
	j := &recordingJournal{}
	db.SetJournal(j.record)

	b := db.CreateBucket("b") // new -> op
	db.CreateBucket("b")      // existing -> no op
	b.Put([]byte("k"), []byte("v1"))
	if !b.PutIfAbsent([]byte("k2"), []byte("v2")) {
		t.Fatal("PutIfAbsent of fresh key failed")
	}
	if b.PutIfAbsent([]byte("k2"), []byte("loser")) { // skipped -> no op
		t.Fatal("PutIfAbsent overwrote")
	}
	b.Update([]byte("k"), func(old []byte, ok bool) ([]byte, bool) {
		return []byte("v1-updated"), true
	})
	b.Update([]byte("k"), func(old []byte, ok bool) ([]byte, bool) {
		return nil, false // declined -> no op
	})
	if !b.Delete([]byte("k2")) {
		t.Fatal("Delete of present key failed")
	}
	if b.Delete([]byte("missing")) { // absent -> no op
		t.Fatal("Delete of absent key reported true")
	}
	db.DeleteBucket("b")
	db.DeleteBucket("never-existed") // no op

	want := []Op{
		{Kind: OpCreateBucket, Bucket: "b"},
		{Kind: OpPut, Bucket: "b", Key: []byte("k"), Value: []byte("v1")},
		{Kind: OpPut, Bucket: "b", Key: []byte("k2"), Value: []byte("v2")},
		{Kind: OpPut, Bucket: "b", Key: []byte("k"), Value: []byte("v1-updated")},
		{Kind: OpDelete, Bucket: "b", Key: []byte("k2")},
		{Kind: OpDropBucket, Bucket: "b"},
	}
	if len(j.ops) != len(want) {
		t.Fatalf("journaled %d ops, want %d: %+v", len(j.ops), len(want), j.ops)
	}
	for i, w := range want {
		got := j.ops[i]
		if got.Kind != w.Kind || got.Bucket != w.Bucket ||
			!bytes.Equal(got.Key, w.Key) || !bytes.Equal(got.Value, w.Value) {
			t.Fatalf("op %d = %+v, want %+v", i, got, w)
		}
	}
}

// TestJournalReplayEquivalence is the unit-level replay-equivalence
// property: a random op sequence replayed from its journal yields a
// byte-identical snapshot — the invariant the metadata WAL's recovery
// path depends on.
func TestJournalReplayEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	db := New()
	j := &recordingJournal{}
	db.SetJournal(j.record)

	buckets := []string{"alpha", "beta", "gamma"}
	for i := 0; i < 2000; i++ {
		b := db.CreateBucket(buckets[rng.Intn(len(buckets))])
		key := []byte(fmt.Sprintf("key-%03d", rng.Intn(200)))
		switch rng.Intn(5) {
		case 0, 1:
			b.Put(key, []byte(fmt.Sprintf("val-%d", i)))
		case 2:
			b.PutIfAbsent(key, []byte(fmt.Sprintf("ifabsent-%d", i)))
		case 3:
			b.Update(key, func(old []byte, ok bool) ([]byte, bool) {
				if !ok {
					return nil, false
				}
				return append(append([]byte(nil), old...), '!'), true
			})
		case 4:
			b.Delete(key)
		}
		if rng.Intn(200) == 0 {
			db.DeleteBucket(buckets[rng.Intn(len(buckets))])
		}
	}

	if got, want := j.replay().Snapshot(), db.Snapshot(); !bytes.Equal(got, want) {
		t.Fatalf("journal replay snapshot differs: %d vs %d bytes", len(got), len(want))
	}
}

// TestJournalConcurrentLinearization drives concurrent writers and
// checks the journal is a valid linearization: replaying it reproduces
// the exact final contents. Per key the bucket lock orders apply and
// emit together; across keys any captured order commutes.
func TestJournalConcurrentLinearization(t *testing.T) {
	db := New()
	j := &recordingJournal{}
	db.SetJournal(j.record)
	b := db.CreateBucket("shared")

	const workers = 8
	const rounds = 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				// Each worker owns a key range and also fights over one
				// shared key.
				own := []byte(fmt.Sprintf("w%d-k%d", w, i%17))
				b.Put(own, []byte(fmt.Sprintf("v%d", i)))
				b.Update([]byte("contended"), func(old []byte, ok bool) ([]byte, bool) {
					return []byte(fmt.Sprintf("w%d-%d", w, i)), true
				})
				if i%5 == 0 {
					b.Delete(own)
				}
			}
		}(w)
	}
	wg.Wait()

	if got, want := j.replay().Snapshot(), db.Snapshot(); !bytes.Equal(got, want) {
		t.Fatalf("concurrent journal replay differs from live contents")
	}
}

// TestJournalRemoved pins that SetJournal(nil) stops emission.
func TestJournalRemoved(t *testing.T) {
	db := New()
	j := &recordingJournal{}
	db.SetJournal(j.record)
	b := db.CreateBucket("b")
	b.Put([]byte("k"), []byte("v"))
	n := len(j.ops)
	db.SetJournal(nil)
	b.Put([]byte("k2"), []byte("v2"))
	if len(j.ops) != n {
		t.Fatalf("journal still receiving ops after removal")
	}
}
