package stores

import (
	"sync"

	"expelliarmus/internal/core"
	"expelliarmus/internal/simio"
	"expelliarmus/internal/vmi"
)

// Expel adapts the Expelliarmus system (internal/core) to the Store
// interface used by the evaluation harness. Publishing clones the image
// first, because semantic decomposition consumes it.
type Expel struct {
	mu  sync.Mutex
	sys *core.System
	// LastPublish and LastRetrieve keep the most recent detailed reports
	// for harness code that needs the full phase breakdown.
	LastPublish  *core.PublishReport
	LastRetrieve *core.RetrieveReport
}

// NewExpel returns an Expelliarmus store over a fresh in-memory
// repository.
func NewExpel(dev *simio.Device, opts core.Options) *Expel {
	return &Expel{sys: core.NewSystem(dev, opts)}
}

// NewExpelWithSystem adapts an existing system — e.g. one whose repository
// runs on the disk backend — to the Store interface.
func NewExpelWithSystem(sys *core.System) *Expel {
	return &Expel{sys: sys}
}

// System exposes the wrapped system.
func (s *Expel) System() *core.System { return s.sys }

// Name implements Store.
func (s *Expel) Name() string { return "expelliarmus" }

// Publish implements Store.
func (s *Expel) Publish(img *vmi.Image) (*PublishStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep, err := s.sys.Publish(img.Clone())
	if err != nil {
		return nil, err
	}
	s.LastPublish = rep
	return &PublishStats{
		Image:      img.Name,
		Seconds:    rep.Seconds(),
		Phases:     phaseSeconds(rep.Meter),
		Similarity: rep.Similarity,
		Exported:   len(rep.Exported),
	}, nil
}

// Retrieve implements Store.
func (s *Expel) Retrieve(name string) (*vmi.Image, *RetrieveStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	img, rep, err := s.sys.Retrieve(name)
	if err != nil {
		return nil, nil, err
	}
	s.LastRetrieve = rep
	return img, &RetrieveStats{
		Image:   name,
		Seconds: rep.Seconds(),
		Phases:  phaseSeconds(rep.Meter),
	}, nil
}

// SizeBytes implements Store.
func (s *Expel) SizeBytes() int64 { return s.sys.Repo().SizeBytes() }
