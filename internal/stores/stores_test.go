package stores

import (
	"fmt"
	"testing"

	"expelliarmus/internal/builder"
	"expelliarmus/internal/catalog"
	"expelliarmus/internal/chunker"
	"expelliarmus/internal/core"
	"expelliarmus/internal/fstree"
	"expelliarmus/internal/pkgmgr"
	"expelliarmus/internal/simio"
	"expelliarmus/internal/vmi"
)

var testDev = simio.NewDevice(simio.PaperProfile().Scaled(catalog.ByteScale, catalog.FileScale))

// imageCache builds each template once per test binary run.
var imageCache = map[string]*vmi.Image{}

func image(t testing.TB, name string) *vmi.Image {
	t.Helper()
	if img, ok := imageCache[name]; ok {
		return img.Clone()
	}
	tpl, ok := catalog.Find(name)
	if !ok {
		t.Fatalf("template %s missing", name)
	}
	img, err := builder.New(catalog.NewUniverse()).Build(tpl)
	if err != nil {
		t.Fatal(err)
	}
	imageCache[name] = img
	return img.Clone()
}

func allStores() []Store {
	return []Store{
		NewQcow2(testDev),
		NewGzip(testDev),
		NewMirage(testDev),
		NewHemera(testDev),
		NewBlockDedup(testDev, chunker.NewFixed(4096)),
		NewBlockDedup(testDev, chunker.NewRabin(4096)),
		NewExpel(testDev, core.Options{}),
	}
}

// TestRoundTripAllStores: every scheme must reproduce a functionally
// equivalent image — same installed packages, same user data.
func TestRoundTripAllStores(t *testing.T) {
	for _, s := range allStores() {
		t.Run(s.Name(), func(t *testing.T) {
			if s.Name() == "expelliarmus" {
				// Expelliarmus needs the base published first.
				if _, err := s.Publish(image(t, "Mini")); err != nil {
					t.Fatal(err)
				}
			}
			orig := image(t, "Redis")
			origFS, _ := orig.Mount()
			origMgr, _ := pkgmgr.New(origFS)
			origPkgs, _ := origMgr.Installed()

			if _, err := s.Publish(image(t, "Redis")); err != nil {
				t.Fatal(err)
			}
			got, _, err := s.Retrieve("Redis")
			if err != nil {
				t.Fatal(err)
			}
			if got.Name != "Redis" {
				t.Fatalf("name = %q", got.Name)
			}
			if got.Base != catalog.DefaultBase {
				t.Fatalf("base attrs lost: %v", got.Base)
			}
			if len(got.Primaries) != 1 || got.Primaries[0] != "redis-server" {
				t.Fatalf("primaries lost: %v", got.Primaries)
			}
			fs, err := got.Mount()
			if err != nil {
				t.Fatalf("mount retrieved image: %v", err)
			}
			mgr, err := pkgmgr.New(fs)
			if err != nil {
				t.Fatal(err)
			}
			pkgs, _ := mgr.Installed()
			if len(pkgs) != len(origPkgs) {
				t.Fatalf("retrieved %d packages, want %d", len(pkgs), len(origPkgs))
			}
			if !fs.Exists("/usr/bin/redis-server") {
				t.Fatal("redis binary missing")
			}
			// User data must survive every scheme.
			found := false
			for _, root := range vmi.UserDataRoots {
				if !fs.Exists(root) {
					continue
				}
				fs.Walk(root, func(fi fstree.FileInfo) error {
					if !fi.IsDir {
						found = true
					}
					return nil
				})
			}
			if !found {
				t.Fatal("user data lost")
			}
		})
	}
}

func TestRetrieveMissingImage(t *testing.T) {
	for _, s := range allStores() {
		if _, _, err := s.Retrieve("nope"); err == nil {
			t.Errorf("%s: retrieved missing image", s.Name())
		}
	}
}

// TestStorageOrdering reproduces the qualitative Fig. 3 result on a small
// image set: qcow2 > gzip > mirage ≈ hemera > expelliarmus once several
// similar images are stored.
func TestStorageOrdering(t *testing.T) {
	names := []string{"Mini", "Redis", "Base"}
	qcow := NewQcow2(testDev)
	gz := NewGzip(testDev)
	mir := NewMirage(testDev)
	hem := NewHemera(testDev)
	exp := NewExpel(testDev, core.Options{})
	for _, n := range names {
		for _, s := range []Store{qcow, gz, mir, hem, exp} {
			if _, err := s.Publish(image(t, n)); err != nil {
				t.Fatalf("%s publish %s: %v", s.Name(), n, err)
			}
		}
	}
	q, g, mi, h, e := qcow.SizeBytes(), gz.SizeBytes(), mir.SizeBytes(), hem.SizeBytes(), exp.SizeBytes()
	t.Logf("sizes: qcow2=%d gzip=%d mirage=%d hemera=%d expel=%d", q, g, mi, h, e)
	// At small image counts gzip can still beat the dedup schemes (the
	// paper's Fig. 3a shows gzip 3.2 GB vs Mirage 3.4 GB at 4 images); the
	// raw format is always worst and Expelliarmus always at least matches
	// the file-level schemes.
	if q <= g || q <= mi || q <= h || q <= e {
		t.Errorf("qcow2 %d not the largest: %d %d %d %d", q, g, mi, h, e)
	}
	if e > mi {
		t.Errorf("expelliarmus %d above mirage %d", e, mi)
	}
	// Mirage and Hemera store the same content, differing only in DB vs
	// filesystem placement.
	diff := float64(mi-h) / float64(mi)
	if diff < -0.2 || diff > 0.2 {
		t.Errorf("mirage %d vs hemera %d differ by more than 20%%", mi, h)
	}
}

// TestBlockDedupAcrossImages: chunk-level dedup captures the shared base
// between two images, landing between qcow2 and the semantic scheme.
func TestBlockDedupAcrossImages(t *testing.T) {
	qcow := NewQcow2(testDev)
	// Chunk size must match the filesystem block size for fixed-size
	// dedup to capture cross-image redundancy — the chunk-size-selection
	// sensitivity reported by Jayaram et al. (ablation A1 sweeps this).
	fixed := NewBlockDedup(testDev, chunker.NewFixed(catalog.ClusterSize))
	for _, n := range []string{"Mini", "Redis"} {
		qcow.Publish(image(t, n))
		if _, err := fixed.Publish(image(t, n)); err != nil {
			t.Fatal(err)
		}
	}
	if fixed.SizeBytes() >= qcow.SizeBytes() {
		t.Errorf("block dedup %d not below qcow2 %d", fixed.SizeBytes(), qcow.SizeBytes())
	}
	// Jin et al.: block dedup detects a large share of identical content
	// between VMIs with the same guest OS.
	savings := 1 - float64(fixed.SizeBytes())/float64(qcow.SizeBytes())
	if savings < 0.2 {
		t.Errorf("block dedup savings = %.0f%%, want >= 20%%", savings*100)
	}
	t.Logf("block dedup savings over qcow2: %.0f%%", savings*100)
}

// TestRetrievalTimeOrdering reproduces the Fig. 5b shape: Mirage retrieval
// is slowest; Hemera and Expelliarmus are comparable.
func TestRetrievalTimeOrdering(t *testing.T) {
	mir := NewMirage(testDev)
	hem := NewHemera(testDev)
	exp := NewExpel(testDev, core.Options{})
	for _, n := range []string{"Mini", "Redis"} {
		for _, s := range []Store{mir, hem, exp} {
			if _, err := s.Publish(image(t, n)); err != nil {
				t.Fatal(err)
			}
		}
	}
	var secs = map[string]float64{}
	for _, s := range []Store{mir, hem, exp} {
		_, st, err := s.Retrieve("Redis")
		if err != nil {
			t.Fatal(err)
		}
		secs[s.Name()] = st.Seconds
	}
	t.Logf("retrieval seconds: %v", secs)
	if secs["mirage"] <= secs["hemera"] {
		t.Errorf("mirage %.1fs not slower than hemera %.1fs", secs["mirage"], secs["hemera"])
	}
	if secs["mirage"] <= secs["expelliarmus"] {
		t.Errorf("mirage %.1fs not slower than expelliarmus %.1fs", secs["mirage"], secs["expelliarmus"])
	}
	// Hemera and Expelliarmus "perform nearly equal for most VMIs".
	ratio := secs["hemera"] / secs["expelliarmus"]
	if ratio < 0.3 || ratio > 3.5 {
		t.Errorf("hemera/expelliarmus ratio = %.2f, want comparable", ratio)
	}
}

// TestPublishTimeOrdering reproduces the Fig. 4 shape for a small image:
// Expelliarmus publishes faster than Mirage and Hemera when the base is
// already stored.
func TestPublishTimeOrdering(t *testing.T) {
	mir := NewMirage(testDev)
	hem := NewHemera(testDev)
	exp := NewExpel(testDev, core.Options{})
	for _, s := range []Store{mir, hem, exp} {
		if _, err := s.Publish(image(t, "Mini")); err != nil {
			t.Fatal(err)
		}
	}
	var secs = map[string]float64{}
	for _, s := range []Store{mir, hem, exp} {
		st, err := s.Publish(image(t, "Redis"))
		if err != nil {
			t.Fatal(err)
		}
		secs[s.Name()] = st.Seconds
	}
	t.Logf("publish seconds: %v", secs)
	if secs["expelliarmus"] >= secs["mirage"] || secs["expelliarmus"] >= secs["hemera"] {
		t.Errorf("expelliarmus %.1fs not fastest: %v", secs["expelliarmus"], secs)
	}
}

func TestExpelReportsSimilarity(t *testing.T) {
	exp := NewExpel(testDev, core.Options{})
	st1, err := exp.Publish(image(t, "Mini"))
	if err != nil {
		t.Fatal(err)
	}
	if st1.Similarity != 0 {
		t.Fatalf("first publish similarity = %v", st1.Similarity)
	}
	st2, err := exp.Publish(image(t, "Redis"))
	if err != nil {
		t.Fatal(err)
	}
	if st2.Similarity < 0.9 {
		t.Fatalf("Redis similarity = %v, want ~0.97", st2.Similarity)
	}
	if st2.Exported != 1 {
		t.Fatalf("Redis exported = %d", st2.Exported)
	}
	if exp.LastPublish == nil || exp.LastPublish.Image != "Redis" {
		t.Fatal("LastPublish not recorded")
	}
}

func TestGzipActuallyCompresses(t *testing.T) {
	qcow := NewQcow2(testDev)
	gz := NewGzip(testDev)
	qcow.Publish(image(t, "Mini"))
	gz.Publish(image(t, "Mini"))
	ratio := float64(qcow.SizeBytes()) / float64(gz.SizeBytes())
	if ratio < 2.0 || ratio > 4.2 {
		t.Errorf("gzip ratio = %.2f, want ~2.8 (paper Fig. 3b)", ratio)
	}
}

func TestRepublishReplacesQcow(t *testing.T) {
	qcow := NewQcow2(testDev)
	qcow.Publish(image(t, "Mini"))
	size1 := qcow.SizeBytes()
	qcow.Publish(image(t, "Mini"))
	if qcow.SizeBytes() != size1 {
		t.Fatalf("republishing same image changed size: %d -> %d", size1, qcow.SizeBytes())
	}
	if got := qcow.Images(); len(got) != 1 || got[0] != "Mini" {
		t.Fatalf("Images = %v", got)
	}
}

func TestStoreNames(t *testing.T) {
	want := map[string]bool{
		"qcow2": true, "qcow2+gzip": true, "mirage": true, "hemera": true,
		"blockdedup-fixed-4096": true, "blockdedup-rabin-4096": true,
		"expelliarmus": true,
	}
	for _, s := range allStores() {
		if !want[s.Name()] {
			t.Errorf("unexpected store name %q", s.Name())
		}
	}
}

func BenchmarkMiragePublish(b *testing.B) {
	img := image(b, "Mini")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewMirage(testDev)
		if _, err := s.Publish(img); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExpelPublish(b *testing.B) {
	img := image(b, "Mini")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewExpel(testDev, core.Options{})
		if _, err := s.Publish(img); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleStore() {
	dev := simio.NewDevice(simio.PaperProfile().Scaled(catalog.ByteScale, catalog.FileScale))
	s := NewQcow2(dev)
	tpl, _ := catalog.Find("Mini")
	img, _ := builder.New(catalog.NewUniverse()).Build(tpl)
	s.Publish(img)
	fmt.Println(len(s.Images()))
	// Output: 1
}
