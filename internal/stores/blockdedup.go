package stores

import (
	"bytes"
	"fmt"
	"sync"

	"expelliarmus/internal/blobstore"
	"expelliarmus/internal/chunker"
	"expelliarmus/internal/metadb"
	"expelliarmus/internal/simio"
	"expelliarmus/internal/vdisk"
	"expelliarmus/internal/vmi"
)

// BlockDedup is the related-work baseline (Jin et al., Liquid): the
// serialized image is chunked — fixed-size or Rabin content-defined — and
// chunks are stored content-addressed. It captures byte-identical
// redundancy across images but, unlike the semantic schemes, cannot tell
// package payload from churn and stores whole-image recipes.
type BlockDedup struct {
	mu     sync.Mutex
	dev    *simio.Device
	chk    chunker.Chunker
	blobs  *blobstore.Store
	db     *metadb.DB
	charge bool
}

// NewBlockDedup returns an empty block-dedup store using the chunker.
func NewBlockDedup(dev *simio.Device, chk chunker.Chunker) *BlockDedup {
	s := &BlockDedup{dev: dev, chk: chk, blobs: blobstore.New(), db: metadb.New()}
	s.db.CreateBucket("recipes")
	return s
}

// Name implements Store.
func (s *BlockDedup) Name() string { return "blockdedup-" + s.chk.Name() }

// Publish implements Store.
func (s *BlockDedup) Publish(img *vmi.Image) (*PublishStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := &simio.Meter{}
	raw := img.Serialize()
	m.Charge(simio.PhaseScan, s.dev.ReadCost(int64(len(raw))))
	m.Charge(simio.PhaseHash, s.dev.HashCost(int64(len(raw))))

	chunks := s.chk.Split(raw)
	var recipe bytes.Buffer
	meta := metaOf(img)
	recipe.WriteString(fmt.Sprintf("%s\n%s\n%s\n%s\n%d\n",
		meta.base[0], meta.base[1], meta.base[2], meta.base[3], len(meta.primaries)))
	for _, p := range meta.primaries {
		recipe.WriteString(p + "\n")
	}
	for _, c := range chunks {
		id, fresh := s.blobs.Put(c.Data)
		if fresh {
			m.Charge(simio.PhaseStore, s.dev.WriteCost(int64(len(c.Data))))
		}
		recipe.Write(id[:])
	}
	s.db.Bucket("recipes").Put([]byte(img.Name), recipe.Bytes())
	m.Charge(simio.PhaseDB, s.dev.DBCost(int64(recipe.Len())))
	return &PublishStats{Image: img.Name, Seconds: m.Seconds(), Phases: phaseSeconds(m)}, nil
}

// Retrieve implements Store.
func (s *BlockDedup) Retrieve(name string) (*vmi.Image, *RetrieveStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	val, ok := s.db.Bucket("recipes").Get([]byte(name))
	if !ok {
		return nil, nil, fmt.Errorf("blockdedup: image %q not found", name)
	}
	m := &simio.Meter{}
	m.Charge(simio.PhaseDB, s.dev.DBCost(int64(len(val))))

	// Parse the header lines.
	var meta imageMeta
	rest := val
	for i := 0; i < 5; i++ {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			return nil, nil, fmt.Errorf("blockdedup: corrupt recipe for %q", name)
		}
		field := string(rest[:nl])
		rest = rest[nl+1:]
		if i < 4 {
			meta.base[i] = field
		} else {
			var np int
			fmt.Sscanf(field, "%d", &np)
			for j := 0; j < np; j++ {
				nl = bytes.IndexByte(rest, '\n')
				if nl < 0 {
					return nil, nil, fmt.Errorf("blockdedup: corrupt primaries for %q", name)
				}
				meta.primaries = append(meta.primaries, string(rest[:nl]))
				rest = rest[nl+1:]
			}
		}
	}
	if len(rest)%32 != 0 {
		return nil, nil, fmt.Errorf("blockdedup: corrupt chunk list for %q", name)
	}
	var raw bytes.Buffer
	for off := 0; off < len(rest); off += 32 {
		var id blobstore.ID
		copy(id[:], rest[off:off+32])
		data, ok := s.blobs.Get(id)
		if !ok {
			return nil, nil, fmt.Errorf("blockdedup: chunk %d missing for %q", off/32, name)
		}
		raw.Write(data)
	}
	m.Charge(simio.PhaseFetch, s.dev.ReadCost(int64(raw.Len())))
	m.Charge(simio.PhaseStore, s.dev.WriteCost(int64(raw.Len())))
	disk, err := vdisk.Deserialize(name, raw.Bytes())
	if err != nil {
		return nil, nil, err
	}
	img := &vmi.Image{Name: name, Disk: disk}
	meta.apply(img)
	return img, &RetrieveStats{Image: name, Seconds: m.Seconds(), Phases: phaseSeconds(m)}, nil
}

// SizeBytes implements Store.
func (s *BlockDedup) SizeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.blobs.TotalBytes() + s.db.SizeBytes()
}
