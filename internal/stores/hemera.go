package stores

import (
	"fmt"
	"sync"

	"expelliarmus/internal/metadb"
	"expelliarmus/internal/simio"
	"expelliarmus/internal/vmi"
)

// Hemera implements Liu et al.'s declarative, data-centric scheme: like
// Mirage it treats images as structured data with file-level dedup, but it
// stores small files inside the metadata database and only large files on
// the filesystem-backed store. Per Sec. VI-C this "optimizes VMI retrieval
// as the database handles small files much faster than the file system".
type Hemera struct {
	mu     sync.Mutex
	dev    *simio.Device
	mirage *Mirage // reuses the indexing pipeline and large-file store
	small  *metadb.Bucket
}

// NewHemera returns an empty Hemera store.
func NewHemera(dev *simio.Device) *Hemera {
	m := NewMirage(dev)
	return &Hemera{dev: dev, mirage: m, small: m.db.CreateBucket("smallfiles")}
}

// Name implements Store.
func (s *Hemera) Name() string { return "hemera" }

// Publish implements Store.
func (s *Hemera) Publish(img *vmi.Image) (*PublishStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := &simio.Meter{}
	vs, entries, err := s.mirage.indexImage(img, m, true, s.small)
	if err != nil {
		return nil, err
	}
	manifest := encodeManifest(vs, metaOf(img), entries)
	s.mirage.db.Bucket("manifests").Put([]byte(img.Name), manifest)
	m.Charge(simio.PhaseDB, s.dev.DBCost(int64(len(manifest))))
	return &PublishStats{Image: img.Name, Seconds: m.Seconds(), Phases: phaseSeconds(m)}, nil
}

// Retrieve implements Store.
func (s *Hemera) Retrieve(name string) (*vmi.Image, *RetrieveStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	val, ok := s.mirage.db.Bucket("manifests").Get([]byte(name))
	if !ok {
		return nil, nil, fmt.Errorf("hemera: image %q not found", name)
	}
	m := &simio.Meter{}
	m.Charge(simio.PhaseDB, s.dev.DBCost(int64(len(val))))
	vs, meta, entries, err := decodeManifest(val)
	if err != nil {
		return nil, nil, err
	}
	img, err := restoreImage(name, vs, meta, entries, m, s.dev, func(e manifestEntry) ([]byte, error) {
		if e.inDB {
			data, ok := s.small.Get(e.blobID[:])
			if !ok {
				return nil, fmt.Errorf("hemera: small file %s missing from DB", e.path)
			}
			m.Charge(simio.PhaseDB, s.dev.DBCost(int64(len(data))))
			return data, nil
		}
		data, ok := s.mirage.blobs.Get(e.blobID)
		if !ok {
			return nil, fmt.Errorf("hemera: blob for %s missing", e.path)
		}
		m.Charge(simio.PhaseFetch, s.dev.SmallFileReadCost(int64(len(data))))
		return data, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return img, &RetrieveStats{Image: name, Seconds: m.Seconds(), Phases: phaseSeconds(m)}, nil
}

// SizeBytes implements Store.
func (s *Hemera) SizeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mirage.blobs.TotalBytes() + s.mirage.db.SizeBytes()
}
