package stores

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"path"
	"sync"

	"expelliarmus/internal/blobstore"
	"expelliarmus/internal/catalog"
	"expelliarmus/internal/fstree"
	"expelliarmus/internal/metadb"
	"expelliarmus/internal/simio"
	"expelliarmus/internal/vdisk"
	"expelliarmus/internal/vmi"
)

// manifestEntry is one file in a Mirage/Hemera image manifest.
type manifestEntry struct {
	path   string
	size   int64
	dir    bool
	inDB   bool // Hemera: content lives in the database
	blobID blobstore.ID
}

func encodeManifest(virtualSize int64, meta imageMeta, entries []manifestEntry) []byte {
	var buf bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	wU := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf.Write(tmp[:n])
	}
	wS := func(s string) {
		wU(uint64(len(s)))
		buf.WriteString(s)
	}
	wU(uint64(virtualSize))
	for _, f := range meta.base {
		wS(f)
	}
	wU(uint64(len(meta.primaries)))
	for _, p := range meta.primaries {
		wS(p)
	}
	wU(uint64(len(entries)))
	for _, e := range entries {
		wS(e.path)
		wU(uint64(e.size))
		flags := byte(0)
		if e.dir {
			flags |= 1
		}
		if e.inDB {
			flags |= 2
		}
		buf.WriteByte(flags)
		buf.Write(e.blobID[:])
	}
	return buf.Bytes()
}

func decodeManifest(data []byte) (int64, imageMeta, []manifestEntry, error) {
	r := bytes.NewReader(data)
	rU := func() (uint64, error) { return binary.ReadUvarint(r) }
	rS := func() (string, error) {
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return "", err
		}
		if n > uint64(r.Len()) {
			return "", fmt.Errorf("stores: manifest string overflow")
		}
		b := make([]byte, n)
		if n > 0 {
			if _, err := io.ReadFull(r, b); err != nil {
				return "", err
			}
		}
		return string(b), nil
	}
	var meta imageMeta
	vs, err := rU()
	if err != nil {
		return 0, meta, nil, err
	}
	for i := range meta.base {
		if meta.base[i], err = rS(); err != nil {
			return 0, meta, nil, err
		}
	}
	np, err := rU()
	if err != nil {
		return 0, meta, nil, err
	}
	for i := uint64(0); i < np; i++ {
		p, err := rS()
		if err != nil {
			return 0, meta, nil, err
		}
		meta.primaries = append(meta.primaries, p)
	}
	n, err := rU()
	if err != nil {
		return 0, meta, nil, err
	}
	entries := make([]manifestEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		var e manifestEntry
		if e.path, err = rS(); err != nil {
			return 0, meta, nil, err
		}
		sz, err := rU()
		if err != nil {
			return 0, meta, nil, err
		}
		e.size = int64(sz)
		flags, err := r.ReadByte()
		if err != nil {
			return 0, meta, nil, err
		}
		e.dir = flags&1 != 0
		e.inDB = flags&2 != 0
		if _, err := io.ReadFull(r, e.blobID[:]); err != nil {
			return 0, meta, nil, err
		}
		entries = append(entries, e)
	}
	return int64(vs), meta, entries, nil
}

// Mirage implements IBM Mirage's MIF scheme (Reimer et al., Ammons et
// al.): images become structured data — a per-image manifest of files plus
// a content-addressed global store with file-level deduplication. Its
// publish cost is dominated by per-file indexing over the whole
// filesystem, and its retrieval re-reads every file individually from the
// store, paying the small-file penalty the paper highlights.
type Mirage struct {
	mu    sync.Mutex
	dev   *simio.Device
	blobs *blobstore.Store
	db    *metadb.DB
}

// NewMirage returns an empty Mirage store.
func NewMirage(dev *simio.Device) *Mirage {
	m := &Mirage{dev: dev, blobs: blobstore.New(), db: metadb.New()}
	m.db.CreateBucket("manifests")
	return m
}

// Name implements Store.
func (s *Mirage) Name() string { return "mirage" }

// indexImage walks the guest filesystem, deduplicating file contents into
// the blob store; shared by Mirage and Hemera (smallToDB toggles the
// hybrid behaviour).
func (s *Mirage) indexImage(img *vmi.Image, m *simio.Meter, smallToDB bool, small *metadb.Bucket) (int64, []manifestEntry, error) {
	fs, err := img.Mount()
	if err != nil {
		return 0, nil, err
	}
	var entries []manifestEntry
	prof := s.dev.Profile()
	err = fs.Walk("/", func(fi fstree.FileInfo) error {
		if fi.IsDir {
			entries = append(entries, manifestEntry{path: fi.Path, dir: true})
			return nil
		}
		data, err := fs.ReadFile(fi.Path)
		if err != nil {
			return err
		}
		// Per-file indexing: open + read + hash + dedup lookup.
		m.Charge(simio.PhaseScan, s.dev.OpenCost(1))
		m.Charge(simio.PhaseScan, s.dev.ReadCost(int64(len(data))))
		m.Charge(simio.PhaseHash, s.dev.HashCost(int64(len(data))))
		m.Charge(simio.PhaseDB, s.dev.DBCost(0))

		e := manifestEntry{path: fi.Path, size: fi.Size}
		if smallToDB && fi.Size < prof.SmallFileSize {
			e.inDB = true
			id := blobstore.Sum(data)
			e.blobID = id
			if _, ok := small.Get(id[:]); !ok {
				small.Put(id[:], data)
				m.Charge(simio.PhaseDB, s.dev.DBCost(int64(len(data))))
			}
		} else {
			id, fresh := s.blobs.Put(data)
			e.blobID = id
			if fresh {
				m.Charge(simio.PhaseStore, s.dev.WriteCost(int64(len(data))))
			}
		}
		entries = append(entries, e)
		return nil
	})
	if err != nil {
		return 0, nil, err
	}
	return img.Disk.VirtualSize(), entries, nil
}

// Publish implements Store.
func (s *Mirage) Publish(img *vmi.Image) (*PublishStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := &simio.Meter{}
	vs, entries, err := s.indexImage(img, m, false, nil)
	if err != nil {
		return nil, err
	}
	manifest := encodeManifest(vs, metaOf(img), entries)
	s.db.Bucket("manifests").Put([]byte(img.Name), manifest)
	m.Charge(simio.PhaseDB, s.dev.DBCost(int64(len(manifest))))
	return &PublishStats{Image: img.Name, Seconds: m.Seconds(), Phases: phaseSeconds(m)}, nil
}

// restoreImage rebuilds a filesystem image from a manifest; fetchFile
// returns a file's contents and charges its read cost.
func restoreImage(name string, virtualSize int64, meta imageMeta, entries []manifestEntry,
	m *simio.Meter, dev *simio.Device,
	fetch func(e manifestEntry) ([]byte, error)) (*vmi.Image, error) {

	var files int
	for _, e := range entries {
		if !e.dir {
			files++
		}
	}
	disk := vdisk.New(name, virtualSize, catalog.ClusterSize)
	fs, err := fstree.Format(disk, uint32(files+files/4+640))
	if err != nil {
		return nil, err
	}
	var written int64
	for _, e := range entries {
		if e.dir {
			if err := fs.MkdirAll(e.path); err != nil {
				return nil, err
			}
			continue
		}
		data, err := fetch(e)
		if err != nil {
			return nil, err
		}
		if err := fs.MkdirAll(path.Dir(e.path)); err != nil {
			return nil, err
		}
		if err := fs.WriteFile(e.path, data); err != nil {
			return nil, err
		}
		written += int64(len(data))
	}
	// Writing the reconstructed image back out is sequential.
	m.Charge(simio.PhaseStore, dev.WriteCost(written))
	img := &vmi.Image{Name: name, Disk: disk}
	meta.apply(img)
	return img, nil
}

// Retrieve implements Store.
func (s *Mirage) Retrieve(name string) (*vmi.Image, *RetrieveStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	val, ok := s.db.Bucket("manifests").Get([]byte(name))
	if !ok {
		return nil, nil, fmt.Errorf("mirage: image %q not found", name)
	}
	m := &simio.Meter{}
	m.Charge(simio.PhaseDB, s.dev.DBCost(int64(len(val))))
	vs, meta, entries, err := decodeManifest(val)
	if err != nil {
		return nil, nil, err
	}
	img, err := restoreImage(name, vs, meta, entries, m, s.dev, func(e manifestEntry) ([]byte, error) {
		data, ok := s.blobs.Get(e.blobID)
		if !ok {
			return nil, fmt.Errorf("mirage: blob for %s missing", e.path)
		}
		// Mirage reads many individual files from a filesystem-backed
		// repository — the small-file penalty of Sec. VI-C.
		m.Charge(simio.PhaseFetch, s.dev.SmallFileReadCost(int64(len(data))))
		return data, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return img, &RetrieveStats{Image: name, Seconds: m.Seconds(), Phases: phaseSeconds(m)}, nil
}

// SizeBytes implements Store.
func (s *Mirage) SizeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.blobs.TotalBytes() + s.db.SizeBytes()
}
