// Package stores implements the VMI encoding schemes compared in the
// paper's evaluation (Sec. VI-B): plain Qcow2, Qcow2+Gzip, Mirage-style
// file-level deduplication, Hemera-style hybrid database/file storage,
// block-level deduplication (the related-work baseline), and Expelliarmus
// itself. All schemes implement the same Store interface, charge their
// operations to simio meters, and report their repository footprint — the
// three quantities behind Figs. 3, 4 and 5.
package stores

import (
	"expelliarmus/internal/simio"
	"expelliarmus/internal/vmi"
)

// PublishStats describes one publish operation.
type PublishStats struct {
	Image   string
	Seconds float64
	Phases  map[simio.Phase]float64
	// Similarity is SimG against the master graph (Expelliarmus only).
	Similarity float64
	// Exported counts packages stored (Expelliarmus only).
	Exported int
}

// RetrieveStats describes one retrieval operation.
type RetrieveStats struct {
	Image   string
	Seconds float64
	Phases  map[simio.Phase]float64
}

func phaseSeconds(m *simio.Meter) map[simio.Phase]float64 {
	out := map[simio.Phase]float64{}
	for ph, d := range m.Snapshot() {
		out[ph] = d.Seconds()
	}
	return out
}

// Store is a VMI repository encoding scheme.
type Store interface {
	// Name identifies the scheme (e.g. "qcow2", "mirage", "expelliarmus").
	Name() string
	// Publish stores the image. Implementations must not consume the
	// caller's image (they clone or serialize as needed).
	Publish(img *vmi.Image) (*PublishStats, error)
	// Retrieve reconstructs a published image by name.
	Retrieve(name string) (*vmi.Image, *RetrieveStats, error)
	// SizeBytes is the repository footprint in real bytes.
	SizeBytes() int64
}
