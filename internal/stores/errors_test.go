package stores

import (
	"strings"
	"testing"

	"expelliarmus/internal/catalog"
	"expelliarmus/internal/chunker"
	"expelliarmus/internal/core"
	"expelliarmus/internal/simio"
)

// TestManifestRoundTrip exercises the Mirage/Hemera manifest codec
// directly, including empty and metadata-only manifests.
func TestManifestRoundTrip(t *testing.T) {
	meta := imageMeta{
		base:      [4]string{"linux", "ubuntu", "16.04", "x86_64"},
		primaries: []string{"redis-server", "apache2"},
	}
	entries := []manifestEntry{
		{path: "/usr", dir: true},
		{path: "/usr/bin/app", size: 1234, inDB: true},
		{path: "/etc/conf", size: 5},
	}
	data := encodeManifest(1<<20, meta, entries)
	vs, gotMeta, gotEntries, err := decodeManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if vs != 1<<20 {
		t.Fatalf("virtual size = %d", vs)
	}
	if gotMeta.base != meta.base || len(gotMeta.primaries) != 2 {
		t.Fatalf("meta = %+v", gotMeta)
	}
	if len(gotEntries) != 3 || !gotEntries[0].dir || !gotEntries[1].inDB ||
		gotEntries[1].size != 1234 || gotEntries[2].path != "/etc/conf" {
		t.Fatalf("entries = %+v", gotEntries)
	}
	// Empty manifest round trip.
	empty := encodeManifest(0, imageMeta{}, nil)
	if _, _, e2, err := decodeManifest(empty); err != nil || len(e2) != 0 {
		t.Fatalf("empty manifest: %v, %v", e2, err)
	}
}

func TestManifestDecodeRejectsCorrupt(t *testing.T) {
	meta := imageMeta{base: [4]string{"l", "u", "16", "x"}}
	data := encodeManifest(4096, meta, []manifestEntry{{path: "/f", size: 9}})
	for _, cut := range []int{1, 5, len(data) / 2, len(data) - 1} {
		if _, _, _, err := decodeManifest(data[:cut]); err == nil {
			t.Errorf("accepted manifest truncated to %d bytes", cut)
		}
	}
	if _, _, _, err := decodeManifest(nil); err == nil {
		t.Error("accepted nil manifest")
	}
}

// TestBlockDedupRecipeCorruption: a corrupted recipe must fail loudly, not
// reconstruct a wrong image.
func TestBlockDedupRecipeCorruption(t *testing.T) {
	s := NewBlockDedup(testDev, chunker.NewFixed(catalog.ClusterSize))
	if _, err := s.Publish(image(t, "Mini")); err != nil {
		t.Fatal(err)
	}
	val, ok := s.db.Bucket("recipes").Get([]byte("Mini"))
	if !ok {
		t.Fatal("recipe missing")
	}
	// Truncate mid-chunk-list: length no longer a multiple of 32.
	s.db.Bucket("recipes").Put([]byte("Mini"), val[:len(val)-7])
	if _, _, err := s.Retrieve("Mini"); err == nil ||
		!strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupted recipe retrieval: %v", err)
	}
}

// TestExpelPublishIdempotentStats: republishing through the adapter keeps
// the repository stable and similarity near 1.
func TestExpelPublishIdempotentStats(t *testing.T) {
	exp := NewExpel(testDev, core.Options{})
	if _, err := exp.Publish(image(t, "Redis")); err != nil {
		t.Fatal(err)
	}
	size := exp.SizeBytes()
	st, err := exp.Publish(image(t, "Redis"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Similarity < 0.99 {
		t.Fatalf("identical republish similarity = %v", st.Similarity)
	}
	if st.Exported != 0 {
		t.Fatalf("identical republish exported %d packages", st.Exported)
	}
	if grown := exp.SizeBytes() - size; grown > 64*1024 {
		t.Fatalf("identical republish grew repo %d bytes", grown)
	}
}

// TestPhaseBreakdownsSumToTotal: every store's stats decompose cleanly.
func TestPhaseBreakdownsSumToTotal(t *testing.T) {
	for _, s := range allStores() {
		st, err := s.Publish(image(t, "Mini"))
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		var sum float64
		for _, v := range st.Phases {
			sum += v
		}
		if diff := st.Seconds - sum; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("%s: phases sum %.3f != total %.3f", s.Name(), sum, st.Seconds)
		}
	}
}

// TestDeviceSharedAcrossStores: stores must not mutate the shared device.
func TestDeviceSharedAcrossStores(t *testing.T) {
	dev := simio.NewDevice(simio.PaperProfile().Scaled(catalog.ByteScale, catalog.FileScale))
	before := dev.Profile()
	a := NewMirage(dev)
	b := NewHemera(dev)
	img := image(t, "Mini")
	a.Publish(img)
	b.Publish(img)
	if dev.Profile() != before {
		t.Fatal("store mutated the shared device profile")
	}
}
