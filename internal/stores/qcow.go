package stores

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sort"
	"sync"

	"expelliarmus/internal/simio"
	"expelliarmus/internal/vdisk"
	"expelliarmus/internal/vmi"
)

// imageMeta carries the upload metadata alongside raw encodings.
type imageMeta struct {
	base      [4]string
	primaries []string
}

func metaOf(img *vmi.Image) imageMeta {
	return imageMeta{
		base:      [4]string{img.Base.Type, img.Base.Distro, img.Base.Version, img.Base.Arch},
		primaries: append([]string(nil), img.Primaries...),
	}
}

func (m imageMeta) apply(img *vmi.Image) {
	img.Base.Type, img.Base.Distro, img.Base.Version, img.Base.Arch =
		m.base[0], m.base[1], m.base[2], m.base[3]
	img.Primaries = append([]string(nil), m.primaries...)
}

// Qcow2 stores each image as its raw serialized qcow2-like file — the
// paper's "Qcow2 format with no compression" baseline.
type Qcow2 struct {
	mu     sync.Mutex
	dev    *simio.Device
	images map[string][]byte
	meta   map[string]imageMeta
	bytes  int64
}

// NewQcow2 returns an empty raw-image store.
func NewQcow2(dev *simio.Device) *Qcow2 {
	return &Qcow2{dev: dev, images: map[string][]byte{}, meta: map[string]imageMeta{}}
}

// Name implements Store.
func (s *Qcow2) Name() string { return "qcow2" }

// Publish implements Store.
func (s *Qcow2) Publish(img *vmi.Image) (*PublishStats, error) {
	m := &simio.Meter{}
	data := img.Serialize()
	m.Charge(simio.PhaseScan, s.dev.ReadCost(int64(len(data))))
	m.Charge(simio.PhaseStore, s.dev.WriteCost(int64(len(data))))
	s.mu.Lock()
	if old, ok := s.images[img.Name]; ok {
		s.bytes -= int64(len(old))
	}
	s.images[img.Name] = data
	s.meta[img.Name] = metaOf(img)
	s.bytes += int64(len(data))
	s.mu.Unlock()
	return &PublishStats{Image: img.Name, Seconds: m.Seconds(), Phases: phaseSeconds(m)}, nil
}

// Retrieve implements Store.
func (s *Qcow2) Retrieve(name string) (*vmi.Image, *RetrieveStats, error) {
	s.mu.Lock()
	data, ok := s.images[name]
	meta := s.meta[name]
	s.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("qcow2: image %q not found", name)
	}
	m := &simio.Meter{}
	m.Charge(simio.PhaseCopy, s.dev.ReadCost(int64(len(data))))
	disk, err := vdisk.Deserialize(name, data)
	if err != nil {
		return nil, nil, err
	}
	img := &vmi.Image{Name: name, Disk: disk}
	meta.apply(img)
	return img, &RetrieveStats{Image: name, Seconds: m.Seconds(), Phases: phaseSeconds(m)}, nil
}

// SizeBytes implements Store.
func (s *Qcow2) SizeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Images lists stored image names.
func (s *Qcow2) Images() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.images))
	for n := range s.images {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Gzip stores each image gzip-compressed — the "Qcow2 + Gzip" baseline.
// Compression is real (compress/gzip), so repository sizes reflect the
// content's actual compressibility.
type Gzip struct {
	mu     sync.Mutex
	dev    *simio.Device
	images map[string][]byte
	meta   map[string]imageMeta
	bytes  int64
}

// NewGzip returns an empty compressed-image store.
func NewGzip(dev *simio.Device) *Gzip {
	return &Gzip{dev: dev, images: map[string][]byte{}, meta: map[string]imageMeta{}}
}

// Name implements Store.
func (s *Gzip) Name() string { return "qcow2+gzip" }

// Publish implements Store.
func (s *Gzip) Publish(img *vmi.Image) (*PublishStats, error) {
	m := &simio.Meter{}
	raw := img.Serialize()
	m.Charge(simio.PhaseScan, s.dev.ReadCost(int64(len(raw))))
	m.Charge(simio.PhaseCompress, s.dev.GzipCost(int64(len(raw))))
	var buf bytes.Buffer
	w, err := gzip.NewWriterLevel(&buf, gzip.DefaultCompression)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(raw); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	data := buf.Bytes()
	m.Charge(simio.PhaseStore, s.dev.WriteCost(int64(len(data))))
	s.mu.Lock()
	if old, ok := s.images[img.Name]; ok {
		s.bytes -= int64(len(old))
	}
	s.images[img.Name] = data
	s.meta[img.Name] = metaOf(img)
	s.bytes += int64(len(data))
	s.mu.Unlock()
	return &PublishStats{Image: img.Name, Seconds: m.Seconds(), Phases: phaseSeconds(m)}, nil
}

// Retrieve implements Store.
func (s *Gzip) Retrieve(name string) (*vmi.Image, *RetrieveStats, error) {
	s.mu.Lock()
	data, ok := s.images[name]
	meta := s.meta[name]
	s.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("gzip: image %q not found", name)
	}
	m := &simio.Meter{}
	m.Charge(simio.PhaseCopy, s.dev.ReadCost(int64(len(data))))
	m.Charge(simio.PhaseDecompress, s.dev.GunzipCost(int64(len(data))))
	r, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, nil, err
	}
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, err
	}
	disk, err := vdisk.Deserialize(name, raw)
	if err != nil {
		return nil, nil, err
	}
	img := &vmi.Image{Name: name, Disk: disk}
	meta.apply(img)
	return img, &RetrieveStats{Image: name, Seconds: m.Seconds(), Phases: phaseSeconds(m)}, nil
}

// SizeBytes implements Store.
func (s *Gzip) SizeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}
