// Package client is the thin Go client of the Expelliarmus repository
// server (internal/server): one pooled HTTP connection set per Client,
// per-request deadlines, and retries for idempotent requests only.
//
// Streaming fidelity. Image downloads are verified end to end: the body
// is hashed as it streams into the caller's writer and checked against
// the server's X-Expel-Sha256/X-Expel-Bytes trailers, and a connection
// aborted mid-stream surfaces as a read error (the chunked framing never
// terminates), so a truncated or damaged image can never be mistaken for
// a complete one.
//
// Error mapping. A 404 with error kind "not-found" unwraps to
// vmirepo.ErrNotFound and a kind "corrupt" reply to blobstore.ErrCorrupt,
// so code written against the in-process API routes remote absence and
// remote corruption identically. A stream the server aborted mid-body —
// or ended without its integrity trailers — unwraps to ErrTruncated,
// never a bare EOF, so callers can tell "the image is incomplete" from
// "the image failed verification"; a truncated stream that delivered no
// bytes to the caller's sink is retried like any transport failure.
package client

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"expelliarmus/internal/blobstore"
	"expelliarmus/internal/metawal"
	"expelliarmus/internal/server"
	"expelliarmus/internal/vmirepo"
	"expelliarmus/internal/wire"
)

// Options configure a Client.
type Options struct {
	// Timeout is the per-request deadline layered onto the caller's
	// context; zero means no client-imposed deadline.
	Timeout time.Duration
	// Retries is how many times an idempotent request (the GETs and
	// DELETE) is retried after a transport-level failure, provided no
	// response bytes reached the caller yet. Non-idempotent requests
	// (publish, assemble, sync) are never retried. Zero means one extra
	// attempt would be zero — i.e. no retries.
	Retries int
}

// Client talks to one repository server. It is safe for concurrent use;
// connections are pooled and reused across requests.
type Client struct {
	base    string
	hc      *http.Client
	timeout time.Duration
	retries int
}

// New returns a client for addr ("host:port" or a full http/https URL).
func New(addr string, o Options) *Client {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	return &Client{
		base: base,
		hc: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}},
		timeout: o.Timeout,
		retries: o.Retries,
	}
}

// Close releases pooled idle connections. In-flight requests finish.
func (c *Client) Close() { c.hc.CloseIdleConnections() }

func (c *Client) ctx(parent context.Context) (context.Context, context.CancelFunc) {
	if c.timeout <= 0 {
		return parent, func() {}
	}
	return context.WithTimeout(parent, c.timeout)
}

// ErrTruncated reports that an image stream ended before its integrity
// trailers arrived: the server (or the connection) aborted mid-body.
// The bytes already delivered are an incomplete prefix, not a damaged
// whole — callers distinguishing "retry the download" from "the image
// failed verification" should test for this sentinel with errors.Is.
var ErrTruncated = errors.New("image stream truncated before trailers")

// apiError reconstructs the operation error from a non-2xx reply,
// resurfacing the server's absence/corruption distinction as the same
// sentinels the in-process API uses.
func apiError(resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	text := strings.TrimSpace(string(msg))
	if text == "" {
		text = resp.Status
	}
	switch resp.Header.Get(server.HeaderErrorKind) {
	case server.KindNotFound:
		return fmt.Errorf("client: %s: %w", text, vmirepo.ErrNotFound)
	case server.KindCorrupt:
		return fmt.Errorf("client: %s: %w", text, blobstore.ErrCorrupt)
	case server.KindReadOnly:
		return fmt.Errorf("client: %s: %w", text, vmirepo.ErrReadOnly)
	case server.KindEpochGone:
		return fmt.Errorf("client: %s: %w", text, metawal.ErrEpochGone)
	case server.KindQuotaExceeded:
		return fmt.Errorf("client: %s: %w", text, vmirepo.ErrQuotaExceeded)
	}
	return fmt.Errorf("client: server returned %s: %s", resp.Status, text)
}

// doIdempotent issues req-building attempts until one succeeds, retrying
// transport-level failures (and streams truncated before any byte
// reached the caller) up to c.retries times. The builder is called
// afresh per attempt — each one constructs a brand-new request, so a
// response body partially consumed by the previous attempt can never
// leak into the next. attempt must report via wrote whether any
// response bytes already reached the caller's sink — once they have,
// retrying would corrupt it, so the error is final.
func (c *Client) doIdempotent(attempt func() (wrote bool, err error)) error {
	var err error
	for try := 0; ; try++ {
		var wrote bool
		wrote, err = attempt()
		if err == nil {
			return nil
		}
		var uerr *url.Error
		retryable := errors.As(err, &uerr) || errors.Is(err, ErrTruncated)
		if !retryable || wrote || try >= c.retries {
			return err
		}
	}
}

// Retrieve streams the named VMI's serialized image into w, verifying
// length and SHA-256 against the response trailers. It returns the byte
// count and the server's retrieval report.
func (c *Client) Retrieve(ctx context.Context, name string, w io.Writer) (int64, *wire.RetrieveResult, error) {
	var n int64
	var res *wire.RetrieveResult
	err := c.doIdempotent(func() (bool, error) {
		var err error
		n, res, err = c.streamGet(ctx, c.base+"/v1/images/"+url.PathEscape(name), w)
		return n > 0, err
	})
	return n, res, err
}

// streamGet fetches one trailer-verified image stream into w.
func (c *Client) streamGet(parent context.Context, u string, w io.Writer) (int64, *wire.RetrieveResult, error) {
	ctx, cancel := c.ctx(parent)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, nil, apiError(resp)
	}
	return verifyStream(resp, w)
}

// verifyStream drains a streamed image body into w and checks it against
// the trailers. A server abort mid-stream surfaces as ErrTruncated —
// whether it manifests as a body read error (chunked framing cut off)
// or as a body that ended cleanly but never delivered its trailers —
// so callers are never handed a generic EOF for an incomplete image.
func verifyStream(resp *http.Response, w io.Writer) (int64, *wire.RetrieveResult, error) {
	h := sha256.New()
	n, err := io.Copy(io.MultiWriter(w, h), resp.Body)
	if err != nil {
		return n, nil, fmt.Errorf("client: image stream aborted after %d bytes (%v): %w", n, err, ErrTruncated)
	}
	wantSha := resp.Trailer.Get(server.HeaderSha256)
	wantBytes := resp.Trailer.Get(server.HeaderBytes)
	resJSON := resp.Trailer.Get(server.HeaderResult)
	if wantSha == "" || wantBytes == "" || resJSON == "" {
		return n, nil, fmt.Errorf("client: stream ended without integrity trailers: %w", ErrTruncated)
	}
	if want, err := strconv.ParseInt(wantBytes, 10, 64); err != nil || want != n {
		return n, nil, fmt.Errorf("client: streamed %d bytes, server reported %q", n, wantBytes)
	}
	if got := hex.EncodeToString(h.Sum(nil)); got != wantSha {
		return n, nil, fmt.Errorf("client: image digest %s does not match server's %s", got, wantSha)
	}
	var res wire.RetrieveResult
	if err := json.Unmarshal([]byte(resJSON), &res); err != nil {
		return n, nil, fmt.Errorf("client: decode result trailer: %w", err)
	}
	return n, &res, nil
}

// Publish streams an image envelope produced by encode (typically
// Image.EncodeWire or wire.WriteImage) to the server and returns its
// publish report. Publish is not idempotent and never retried.
func (c *Client) Publish(parent context.Context, encode func(io.Writer) error) (*wire.PublishResult, error) {
	ctx, cancel := c.ctx(parent)
	defer cancel()
	pr, pw := io.Pipe()
	go func() { pw.CloseWithError(encode(pw)) }()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/images", pr)
	if err != nil {
		pr.Close()
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.hc.Do(req)
	// Unblock the encoder goroutine on any early exit (send error, or a
	// server that replied without draining the body).
	defer pr.Close()
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	var res wire.PublishResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return nil, fmt.Errorf("client: decode publish result: %w", err)
	}
	return &res, nil
}

// Assemble asks the server to build a VMI from stored packages and
// streams the resulting image into w (verified like Retrieve). Assembly
// has no repository side effects, but the response is a one-shot stream,
// so it is not retried.
func (c *Client) Assemble(parent context.Context, req wire.AssembleRequest, w io.Writer) (int64, *wire.RetrieveResult, error) {
	ctx, cancel := c.ctx(parent)
	defer cancel()
	body, err := json.Marshal(req)
	if err != nil {
		return 0, nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/assemble", strings.NewReader(string(body)))
	if err != nil {
		return 0, nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, nil, apiError(resp)
	}
	return verifyStream(resp, w)
}

// Remove deletes a published VMI (with server-side garbage collection).
func (c *Client) Remove(parent context.Context, name string) error {
	return c.doIdempotent(func() (bool, error) {
		ctx, cancel := c.ctx(parent)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/v1/images/"+url.PathEscape(name), nil)
		if err != nil {
			return false, err
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return false, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			return false, apiError(resp)
		}
		return false, nil
	})
}

// Stats returns the server's repository and cache statistics.
func (c *Client) Stats(parent context.Context) (*wire.Stats, error) {
	var out wire.Stats
	err := c.doIdempotent(func() (bool, error) {
		return false, c.getJSON(parent, c.base+"/v1/stats", &out)
	})
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Sync forces a durable save on a disk-backed server.
func (c *Client) Sync(parent context.Context) (*wire.SyncStats, error) {
	return c.postSyncStats(parent, "/v1/sync")
}

// Compact forces compaction of the server's stores — metadata WAL
// snapshot rewrite plus blob segment reclamation — and returns the same
// durable-save breakdown a sync does. Compaction mutates on-disk layout,
// so like Sync it is never retried.
func (c *Client) Compact(parent context.Context) (*wire.SyncStats, error) {
	return c.postSyncStats(parent, "/v1/compact")
}

// Vacuum reclaims dangling server-side state — unreferenced packages,
// orphaned archives and lifecycle records, blob orphans — and compacts
// the stores. Like Sync and Compact it mutates the repository, so it is
// never retried.
func (c *Client) Vacuum(parent context.Context) (*wire.VacuumStats, error) {
	ctx, cancel := c.ctx(parent)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/vacuum", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	var out wire.VacuumStats
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("client: decode vacuum stats: %w", err)
	}
	return &out, nil
}

// postSyncStats POSTs one maintenance endpoint and decodes its
// wire.SyncStats reply.
func (c *Client) postSyncStats(parent context.Context, path string) (*wire.SyncStats, error) {
	ctx, cancel := c.ctx(parent)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	var out wire.SyncStats
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("client: decode %s stats: %w", path, err)
	}
	return &out, nil
}

// Snapshot streams the server's repository snapshot into w.
func (c *Client) Snapshot(parent context.Context, w io.Writer) (int64, error) {
	var n int64
	err := c.doIdempotent(func() (bool, error) {
		ctx, cancel := c.ctx(parent)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/snapshot", nil)
		if err != nil {
			return false, err
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return false, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return false, apiError(resp)
		}
		n, err = io.Copy(w, resp.Body)
		return n > 0, err
	})
	return n, err
}

// GraphDOT returns the server's master graphs in Graphviz DOT form.
func (c *Client) GraphDOT(parent context.Context) (string, error) {
	var out string
	err := c.doIdempotent(func() (bool, error) {
		ctx, cancel := c.ctx(parent)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/graphs/dot", nil)
		if err != nil {
			return false, err
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return false, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return false, apiError(resp)
		}
		b, err := io.ReadAll(resp.Body)
		out = string(b)
		return false, err
	})
	return out, err
}

// getJSON fetches u and decodes the JSON reply into v.
func (c *Client) getJSON(parent context.Context, u string, v any) error {
	ctx, cancel := c.ctx(parent)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return fmt.Errorf("client: decode %s: %w", u, err)
	}
	return nil
}
