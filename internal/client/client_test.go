package client_test

// Unit tests for the client's retry and truncation semantics against
// scripted handlers — the failure modes here (mid-body aborts, missing
// trailers, per-attempt request rebuilding) are driven precisely by
// faking the server side; the happy paths run against the real server
// in internal/server's integration tests.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"expelliarmus/internal/client"
	"expelliarmus/internal/server"
	"expelliarmus/internal/wire"
)

// writeValidStream emits one complete trailer-verified image stream.
func writeValidStream(w http.ResponseWriter, body []byte) {
	w.Header().Set("Trailer", server.HeaderSha256+", "+server.HeaderBytes+", "+server.HeaderResult)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(body)
	sum := sha256.Sum256(body)
	res, _ := json.Marshal(wire.RetrieveResult{Seconds: 0.01})
	w.Header().Set(server.HeaderSha256, hex.EncodeToString(sum[:]))
	w.Header().Set(server.HeaderBytes, strconv.Itoa(len(body)))
	w.Header().Set(server.HeaderResult, string(res))
}

func newTestClient(t *testing.T, h http.HandlerFunc, retries int) *client.Client {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	cl := client.New(ts.URL, client.Options{Timeout: time.Minute, Retries: retries})
	t.Cleanup(cl.Close)
	return cl
}

// TestAbortMidBodyIsTruncatedNotEOF: a server that dies after the first
// body bytes must surface ErrTruncated — and because those bytes already
// reached the caller's sink, the request must NOT be retried no matter
// how many retries are configured.
func TestAbortMidBodyIsTruncatedNotEOF(t *testing.T) {
	var attempts atomic.Int32
	cl := newTestClient(t, func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.Header().Set("Trailer", server.HeaderSha256+", "+server.HeaderBytes+", "+server.HeaderResult)
		w.Write(bytes.Repeat([]byte("partial-"), 8<<10))
		w.(http.Flusher).Flush()
		panic(http.ErrAbortHandler)
	}, 3)

	var sink bytes.Buffer
	_, _, err := cl.Retrieve(context.Background(), "aborted", &sink)
	if err == nil {
		t.Fatalf("mid-body abort reported success (%d bytes)", sink.Len())
	}
	if !errors.Is(err, client.ErrTruncated) {
		t.Fatalf("mid-body abort = %v, want ErrTruncated", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("request with caller-visible bytes retried: %d attempts", got)
	}
	if sink.Len() == 0 {
		t.Fatalf("expected a partial prefix in the sink")
	}
}

// TestMissingTrailersIsTruncated: a body that ends cleanly but never
// delivers its integrity trailers is an incomplete stream, not a
// verified image — and it too unwraps to ErrTruncated.
func TestMissingTrailersIsTruncated(t *testing.T) {
	var attempts atomic.Int32
	cl := newTestClient(t, func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.Write([]byte("looks complete but proves nothing"))
	}, 2)

	_, _, err := cl.Retrieve(context.Background(), "bare", io.Discard)
	if !errors.Is(err, client.ErrTruncated) {
		t.Fatalf("trailer-less stream = %v, want ErrTruncated", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("request with caller-visible bytes retried: %d attempts", got)
	}
}

// TestTruncationBeforeFirstByteIsRetried: an abort before any body byte
// reached the caller is as retryable as a dial failure — the second
// attempt must succeed with a verified stream.
func TestTruncationBeforeFirstByteIsRetried(t *testing.T) {
	body := bytes.Repeat([]byte("image-payload|"), 4<<10)
	var attempts atomic.Int32
	cl := newTestClient(t, func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) == 1 {
			// Headers out, zero body bytes, then die.
			w.Header().Set("Trailer", server.HeaderSha256)
			w.WriteHeader(http.StatusOK)
			w.(http.Flusher).Flush()
			panic(http.ErrAbortHandler)
		}
		writeValidStream(w, body)
	}, 1)

	var sink bytes.Buffer
	n, res, err := cl.Retrieve(context.Background(), "flaky", &sink)
	if err != nil {
		t.Fatalf("retrieve with one pre-byte abort: %v", err)
	}
	if n != int64(len(body)) || !bytes.Equal(sink.Bytes(), body) {
		t.Fatalf("retried stream differs: %d bytes, want %d", n, len(body))
	}
	if res == nil || res.Seconds <= 0 {
		t.Fatalf("result trailer lost across the retry: %+v", res)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("attempts = %d, want 2", got)
	}
}

// TestRetryRebuildsRequestFromScratch pins that every retry issues a
// brand-new, complete request — method, path and framing intact — rather
// than replaying any state left over from the failed attempt.
func TestRetryRebuildsRequestFromScratch(t *testing.T) {
	type seen struct{ method, path string }
	var attempts atomic.Int32
	requests := make(chan seen, 4)
	cl := newTestClient(t, func(w http.ResponseWriter, r *http.Request) {
		requests <- seen{r.Method, r.URL.Path}
		if attempts.Add(1) == 1 {
			panic(http.ErrAbortHandler) // transport-level failure, no reply
		}
		w.WriteHeader(http.StatusNoContent)
	}, 2)

	if err := cl.Remove(context.Background(), "ghost"); err != nil {
		t.Fatalf("remove with one transport failure: %v", err)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("attempts = %d, want 2", got)
	}
	first, second := <-requests, <-requests
	if first != second {
		t.Fatalf("retry did not rebuild the request: %+v then %+v", first, second)
	}
	if second.method != http.MethodDelete || second.path != "/v1/images/ghost" {
		t.Fatalf("unexpected retried request: %+v", second)
	}
}

// TestCompactDecodesSyncStats pins the maintenance verb: POST
// /v1/compact, reply decoded as the full wire.SyncStats including the
// reclamation fields.
func TestCompactDecodesSyncStats(t *testing.T) {
	want := wire.SyncStats{
		Segments:          3,
		SegmentBytes:      1 << 20,
		SegmentsCompacted: 2,
		BytesReclaimed:    512 << 10,
		DeadBytes:         64,
	}
	cl := newTestClient(t, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v1/compact" {
			t.Errorf("compact sent %s %s", r.Method, r.URL.Path)
		}
		json.NewEncoder(w).Encode(want)
	}, 0)

	got, err := cl.Compact(context.Background())
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if *got != want {
		t.Fatalf("Compact stats = %+v, want %+v", *got, want)
	}
}
