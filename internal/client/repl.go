// Replication client: the follower side of snapshot + WAL shipping.
// Every shipped byte stream is verified against the server's
// X-Expel-Sha256/X-Expel-Bytes trailers before it is trusted — a
// truncated or damaged snapshot or WAL tail surfaces as an error, never
// as silently wrong metadata. A WAL request whose epoch the writer has
// compacted away unwraps to metawal.ErrEpochGone, the follower's signal
// to restart from the current snapshot.
package client

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"net/http"
	"strconv"

	"expelliarmus/internal/server"
	"expelliarmus/internal/wire"
)

// ReplCommit returns the writer's current durable position: the epoch of
// its live snapshot/WAL pair and the commit-marker-covered WAL length.
func (c *Client) ReplCommit(parent context.Context) (wire.ReplCommit, error) {
	var out wire.ReplCommit
	err := c.doIdempotent(func() (bool, error) {
		return false, c.getJSON(parent, c.base+"/v1/repl/commit", &out)
	})
	return out, err
}

// ReplSnapshot fetches the writer's full metadata snapshot, returning
// its epoch and verified bytes. Snapshots are metadata-sized (not image-
// sized), so buffering one is the natural unit — it is handed whole to
// the follower's ResetToSnapshot.
func (c *Client) ReplSnapshot(parent context.Context) (uint64, []byte, error) {
	var epoch uint64
	var data []byte
	err := c.doIdempotent(func() (bool, error) {
		var err error
		epoch, data, err = c.replFetch(parent, c.base+"/v1/repl/snapshot")
		return false, err
	})
	return epoch, data, err
}

// ReplSnapshotReader fetches the writer's full metadata snapshot as a
// verified stream: the returned reader delivers exactly size bytes and
// fails at EOF — never silently — if the body was truncated or does not
// match the server's digest/length trailers. Unlike ReplSnapshot it
// never buffers the snapshot client-side, so a follower restart holds
// one copy of the metadata, not two. The caller must Close the reader;
// establishment failures are not retried (the catch-up loop re-polls).
func (c *Client) ReplSnapshotReader(parent context.Context) (uint64, io.ReadCloser, int64, error) {
	ctx, cancel := c.ctx(parent)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/repl/snapshot", nil)
	if err != nil {
		cancel()
		return 0, nil, 0, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		cancel()
		return 0, nil, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		err := apiError(resp)
		resp.Body.Close()
		cancel()
		return 0, nil, 0, err
	}
	epoch, err := strconv.ParseUint(resp.Header.Get(server.HeaderEpoch), 10, 64)
	if err != nil {
		resp.Body.Close()
		cancel()
		return 0, nil, 0, fmt.Errorf("client: bad %s header: %v", server.HeaderEpoch, err)
	}
	size, err := strconv.ParseInt(resp.Header.Get(server.HeaderSize), 10, 64)
	if err != nil || size < 0 {
		resp.Body.Close()
		cancel()
		return 0, nil, 0, fmt.Errorf("client: bad %s header %q", server.HeaderSize, resp.Header.Get(server.HeaderSize))
	}
	return epoch, &verifiedReader{resp: resp, h: sha256.New(), cancel: cancel}, size, nil
}

// verifiedReader streams one replication body, hashing as it goes and
// settling the digest/length trailers when the body ends. Its Read never
// returns a clean io.EOF for a stream that failed verification.
type verifiedReader struct {
	resp   *http.Response
	h      hash.Hash
	n      int64
	cancel context.CancelFunc
	err    error
}

func (vr *verifiedReader) Read(p []byte) (int, error) {
	if vr.err != nil {
		return 0, vr.err
	}
	n, err := vr.resp.Body.Read(p)
	vr.h.Write(p[:n])
	vr.n += int64(n)
	switch {
	case err == io.EOF:
		vr.err = vr.verify()
		if vr.err != nil {
			return n, vr.err
		}
		vr.err = io.EOF
	case err != nil:
		vr.err = fmt.Errorf("client: stream aborted after %d bytes (%v): %w", vr.n, err, ErrTruncated)
	}
	return n, vr.err
}

// verify settles the trailers once the body has ended cleanly.
func (vr *verifiedReader) verify() error {
	wantSha := vr.resp.Trailer.Get(server.HeaderSha256)
	wantBytes := vr.resp.Trailer.Get(server.HeaderBytes)
	if wantSha == "" || wantBytes == "" {
		return fmt.Errorf("client: stream ended without integrity trailers: %w", ErrTruncated)
	}
	if want, err := strconv.ParseInt(wantBytes, 10, 64); err != nil || want != vr.n {
		return fmt.Errorf("client: streamed %d bytes, server reported %q", vr.n, wantBytes)
	}
	if got := hex.EncodeToString(vr.h.Sum(nil)); got != wantSha {
		return fmt.Errorf("client: stream digest %s does not match server's %s", got, wantSha)
	}
	return nil
}

func (vr *verifiedReader) Close() error {
	err := vr.resp.Body.Close()
	vr.cancel()
	return err
}

// ReplWAL fetches the writer's durable WAL tail [from, durable) of the
// given epoch. An empty slice means the follower is caught up. A stale
// epoch unwraps to metawal.ErrEpochGone.
func (c *Client) ReplWAL(parent context.Context, epoch uint64, from int64) ([]byte, error) {
	u := fmt.Sprintf("%s/v1/repl/wal?epoch=%d&from=%d", c.base, epoch, from)
	var data []byte
	err := c.doIdempotent(func() (bool, error) {
		gotEpoch, b, err := c.replFetch(parent, u)
		if err != nil {
			return false, err
		}
		if gotEpoch != epoch {
			return false, fmt.Errorf("client: WAL reply epoch %d, requested %d", gotEpoch, epoch)
		}
		data = b
		return false, nil
	})
	return data, err
}

// ReplBlob streams one raw blob by content ID into w, verifying the
// digest/length trailers. The caller (the read-through cache) re-derives
// the content address as it stores the bytes, so a blob that passed the
// transport check but hashes to the wrong ID is still caught.
func (c *Client) ReplBlob(parent context.Context, id string, w io.Writer) (int64, error) {
	var n int64
	err := c.doIdempotent(func() (bool, error) {
		ctx, cancel := c.ctx(parent)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/repl/blob/"+id, nil)
		if err != nil {
			return false, err
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return false, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return false, apiError(resp)
		}
		n, err = verifyRaw(resp, w)
		return n > 0, err
	})
	return n, err
}

// replFetch GETs one replication byte stream, returning the epoch header
// and the verified body.
func (c *Client) replFetch(parent context.Context, u string) (uint64, []byte, error) {
	ctx, cancel := c.ctx(parent)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, nil, apiError(resp)
	}
	epoch, err := strconv.ParseUint(resp.Header.Get(server.HeaderEpoch), 10, 64)
	if err != nil {
		return 0, nil, fmt.Errorf("client: bad %s header: %v", server.HeaderEpoch, err)
	}
	var buf bytes.Buffer
	if _, err := verifyRaw(resp, &buf); err != nil {
		return 0, nil, err
	}
	return epoch, buf.Bytes(), nil
}

// verifyRaw drains a trailer-verified byte stream (no result trailer —
// the replication framing) into w.
func verifyRaw(resp *http.Response, w io.Writer) (int64, error) {
	h := sha256.New()
	n, err := io.Copy(io.MultiWriter(w, h), resp.Body)
	if err != nil {
		return n, fmt.Errorf("client: stream aborted after %d bytes (%v): %w", n, err, ErrTruncated)
	}
	wantSha := resp.Trailer.Get(server.HeaderSha256)
	wantBytes := resp.Trailer.Get(server.HeaderBytes)
	if wantSha == "" || wantBytes == "" {
		return n, fmt.Errorf("client: stream ended without integrity trailers: %w", ErrTruncated)
	}
	if want, err := strconv.ParseInt(wantBytes, 10, 64); err != nil || want != n {
		return n, fmt.Errorf("client: streamed %d bytes, server reported %q", n, wantBytes)
	}
	if got := hex.EncodeToString(h.Sum(nil)); got != wantSha {
		return n, fmt.Errorf("client: stream digest %s does not match server's %s", got, wantSha)
	}
	return n, nil
}
