// Repo-optimization: the Fig. 3a experiment as a runnable program. Four
// VMIs (Mini, Base, Desktop, IDE — the set shared with the Mirage and
// Hemera studies) are published into five repository encodings and the
// cumulative sizes are printed after each upload.
package main

import (
	"fmt"
	"log"

	"expelliarmus"
)

func main() {
	sys := expelliarmus.New()

	kinds := []expelliarmus.BaselineKind{
		expelliarmus.BaselineQcow2,
		expelliarmus.BaselineGzip,
		expelliarmus.BaselineMirage,
		expelliarmus.BaselineHemera,
	}
	baselines := make([]*expelliarmus.Baseline, len(kinds))
	for i, k := range kinds {
		b, err := sys.NewBaseline(k)
		if err != nil {
			log.Fatal(err)
		}
		baselines[i] = b
	}

	fmt.Printf("%-10s  %-8s  %-10s  %-8s  %-8s  %-12s\n",
		"VMI", "qcow2", "qcow2+gzip", "mirage", "hemera", "expelliarmus")
	for _, name := range []string{"Mini", "Base", "Desktop", "IDE"} {
		img, err := sys.BuildImage(name)
		if err != nil {
			log.Fatal(err)
		}
		for _, b := range baselines {
			if _, err := b.Publish(img); err != nil {
				log.Fatalf("%s: %v", b.Name(), err)
			}
		}
		if _, err := sys.Publish(img); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s  %-8.2f  %-10.2f  %-8.2f  %-8.2f  %-12.2f\n",
			name,
			baselines[0].SizeGB(), baselines[1].SizeGB(),
			baselines[2].SizeGB(), baselines[3].SizeGB(),
			sys.RepoStats().TotalGB)
	}
	fmt.Println("\npaper reference after IDE: qcow2 8.85, gzip 3.2, mirage 3.4, hemera 3.4, expelliarmus 2.3 GB")
}
