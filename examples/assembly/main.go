// Assembly: Sec. IV-D's on-the-fly VMI composition. After publishing
// several stacks, a VMI that was never uploaded — Redis and Apache
// together, carrying the Redis image's user data — is assembled from
// stored packages on a compatible base image.
package main

import (
	"fmt"
	"log"
	"strings"

	"expelliarmus"
)

func main() {
	sys := expelliarmus.New()

	for _, name := range []string{"Mini", "Redis", "Base"} {
		img, err := sys.BuildImage(name)
		if err != nil {
			log.Fatal(err)
		}
		pub, err := sys.Publish(img)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("published %-6s (exported: %v)\n", name, pub.Exported)
	}

	// redis-server and apache2 were published by different users in
	// different VMIs; assemble them into one image.
	img, ret, err := sys.Assemble("redis-web", []string{"redis-server", "apache2"}, "Redis")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nassembled %q in %.1f modeled seconds\n", img.Name(), ret.Seconds)
	fmt.Printf("imported packages: %s\n", strings.Join(ret.Imported, ", "))

	for _, path := range []string{"/usr/bin/redis-server", "/usr/bin/apache2"} {
		fmt.Printf("  %-24s present: %v\n", path, img.HasFile(path))
	}

	// A request for a package nobody published fails cleanly.
	if _, _, err := sys.Assemble("impossible", []string{"mongodb-org"}, ""); err != nil {
		fmt.Printf("\nassembling unavailable package correctly fails: %v\n", err)
	}
}
