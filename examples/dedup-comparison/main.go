// Dedup-comparison: contrasts the three deduplication granularities the
// paper discusses — block-level (related work: Jin et al., Liquid),
// file-level (Mirage) and semantic (Expelliarmus) — on a pair of similar
// images, including the chunk-size sensitivity of block-level dedup.
package main

import (
	"fmt"
	"log"

	"expelliarmus"
)

func main() {
	sys := expelliarmus.New()

	images := make([]*expelliarmus.Image, 0, 3)
	for _, name := range []string{"Mini", "Redis", "PostgreSql"} {
		img, err := sys.BuildImage(name)
		if err != nil {
			log.Fatal(err)
		}
		images = append(images, img)
	}

	kinds := []expelliarmus.BaselineKind{
		expelliarmus.BaselineQcow2,
		expelliarmus.BaselineBlockFixed,
		expelliarmus.BaselineBlockRabin,
		expelliarmus.BaselineMirage,
	}
	fmt.Println("scheme                repo GB   savings vs qcow2")
	var qcowGB float64
	for _, kind := range kinds {
		b, err := sys.NewBaseline(kind)
		if err != nil {
			log.Fatal(err)
		}
		for _, img := range images {
			if _, err := b.Publish(img); err != nil {
				log.Fatal(err)
			}
		}
		gb := b.SizeGB()
		if kind == expelliarmus.BaselineQcow2 {
			qcowGB = gb
		}
		fmt.Printf("%-20s  %7.2f   %5.1f%%\n", b.Name(), gb, (1-gb/qcowGB)*100)
	}

	for _, img := range images {
		if _, err := sys.Publish(img); err != nil {
			log.Fatal(err)
		}
	}
	gb := sys.RepoStats().TotalGB
	fmt.Printf("%-20s  %7.2f   %5.1f%%\n", "expelliarmus", gb, (1-gb/qcowGB)*100)
	fmt.Println("\nsemantic dedup wins because it stores one base image and drops")
	fmt.Println("instance churn that block- and file-level schemes must keep.")
}
