// Quickstart: publish two VMIs into an Expelliarmus repository and
// retrieve one back, demonstrating semantic deduplication — the second
// image's base is never stored twice and only its new packages are
// exported.
package main

import (
	"fmt"
	"log"

	"expelliarmus"
)

func main() {
	sys := expelliarmus.New()

	// Build a minimal Ubuntu image and a Redis stack on the same base.
	mini, err := sys.BuildImage("Mini")
	if err != nil {
		log.Fatal(err)
	}
	redis, err := sys.BuildImage("Redis")
	if err != nil {
		log.Fatal(err)
	}

	// Publish Mini: the repository is empty, so its base image is stored.
	pub, err := sys.Publish(mini)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published Mini:  base stored=%v, %5.1f modeled seconds\n", pub.BaseStored, pub.Seconds)

	// Publish Redis: semantically similar base → only redis-server stored.
	pub, err = sys.Publish(redis)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published Redis: base stored=%v, similarity %.2f, exported %v, %5.1f modeled seconds\n",
		pub.BaseStored, pub.Similarity, pub.Exported, pub.Seconds)

	st := sys.RepoStats()
	fmt.Printf("repository: %d VMIs share %d base image and hold %d package(s), %.2f GB total\n",
		st.VMIs, st.BaseImages, st.Packages, st.TotalGB)

	// Retrieve Redis: base copy + reset + package import (Fig. 5a phases).
	img, ret, err := sys.Retrieve("Redis")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retrieved %s in %.1f modeled seconds (imported %v)\n", img.Name(), ret.Seconds, ret.Imported)
	fmt.Printf("  copy=%.1fs launch=%.1fs reset=%.1fs import=%.1fs\n",
		ret.Phases["copy"], ret.Phases["launch"], ret.Phases["reset"], ret.Phases["import"])
	fmt.Printf("redis binary present: %v\n", img.HasFile("/usr/bin/redis-server"))
}
