// Containerize: the paper's Sec. VII future work made concrete. Published
// VMIs are exported as layered container images whose layers fall directly
// out of the semantic decomposition — base layer, one layer per package,
// user-data layer — and are shared across exports.
package main

import (
	"fmt"
	"log"

	"expelliarmus"
)

func main() {
	sys := expelliarmus.New()
	for _, name := range []string{"Mini", "Redis", "Base"} {
		img, err := sys.BuildImage(name)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sys.Publish(img); err != nil {
			log.Fatal(err)
		}
	}

	exporter := sys.NewContainerExporter()
	var logical float64
	for _, name := range []string{"Redis", "Base"} {
		m, err := exporter.Export(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("container %s (base %s):\n", m.Name, m.Base)
		for _, l := range m.Layers {
			fmt.Printf("  %-22s %8.4f GB  %s\n", l.CreatedBy, l.SizeGB, l.Digest[:16])
			logical += l.SizeGB
		}
	}
	fmt.Printf("\nlogical size of both containers: %.2f GB\n", logical)
	fmt.Printf("unique bytes in the layer store: %.2f GB (base layer shared)\n", exporter.StoreGB())
}
