module expelliarmus

go 1.24
