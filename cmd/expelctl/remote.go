package main

// Remote mode: every subcommand runs against a live expelserverd through
// the thin HTTP client. Images are still built locally — the synthetic
// catalog is deterministic, so the client and server agree on content —
// and publishes stream up as wire envelopes while retrievals stream back
// with end-to-end verification.

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"expelliarmus"
	"expelliarmus/internal/catalog"
	"expelliarmus/internal/client"
	"expelliarmus/internal/wire"
)

type remoteArgs struct {
	addr      string
	publish   string
	retrieve  string
	assemble  string
	remove    string
	sync      bool
	compact   bool
	vacuum    bool
	saveFile  string
	loadFile  string
	dotFile   string
	noDedup   bool
	noBaseSel bool
	verbose   bool
	pubOpts   expelliarmus.PublishOptions
}

func runRemote(a remoteArgs) {
	// Repository-side configuration belongs to the server's operator; a
	// client silently publishing into a differently-configured repository
	// than it asked for would be worse than an error.
	switch {
	case a.loadFile != "":
		fail(fmt.Errorf("-load restores an in-process repository; it cannot be used with -server (start expelserverd with -store instead)"))
	case a.noDedup:
		fail(fmt.Errorf("-no-dedup configures the repository; set it where expelserverd runs, not with -server"))
	case a.noBaseSel:
		fail(fmt.Errorf("-no-base-selection configures the repository; set it where expelserverd runs, not with -server"))
	}

	ctx := context.Background()
	cl := client.New(a.addr, client.Options{Timeout: 10 * time.Minute, Retries: 2})
	defer cl.Close()
	sys := expelliarmus.New() // local builder only; nothing is published in-process

	var names []string
	switch {
	case a.publish == "all":
		names = expelliarmus.Templates()
	case a.publish != "":
		names = strings.Split(a.publish, ",")
	}
	for _, name := range names {
		name = strings.TrimSpace(name)
		img, err := sys.BuildImage(name)
		if err != nil {
			fail(err)
		}
		st, err := img.Stats()
		if err != nil {
			fail(err)
		}
		pub, err := cl.Publish(ctx, img.EncodeWireWith(a.pubOpts))
		if err != nil {
			fail(err)
		}
		fmt.Printf("published %-14s mounted %.3f GB, %6d files, SimG %.2f, %5.1fs, exported %d pkgs (skipped %d)\n",
			name, st.MountedGB, st.Files, pub.Similarity, pub.Seconds, len(pub.Exported), pub.Skipped)
		if a.verbose {
			printPhases(pub.Phases)
		}
	}

	printRemoteStats(ctx, cl, "repository")

	if a.retrieve != "" {
		n, ret, err := cl.Retrieve(ctx, a.retrieve, io.Discard)
		if err != nil {
			fail(err)
		}
		fmt.Printf("retrieved %s in %.1fs (%d packages imported, %d image bytes verified)\n",
			a.retrieve, ret.Seconds, len(ret.Imported), n)
		if a.verbose {
			printPhases(ret.Phases)
		}
	}

	if a.remove != "" {
		if err := cl.Remove(ctx, a.remove); err != nil {
			fail(err)
		}
		fmt.Printf("removed %s\n", a.remove)
		printRemoteStats(ctx, cl, "repository now")
	}

	if a.assemble != "" {
		name, spec, ok := strings.Cut(a.assemble, "=")
		if !ok {
			fail(fmt.Errorf("bad -assemble %q, want name=pkg1+pkg2", a.assemble))
		}
		primaries := strings.Split(spec, "+")
		n, ret, err := cl.Assemble(ctx, wire.AssembleRequest{Name: name, Primaries: primaries}, io.Discard)
		if err != nil {
			fail(err)
		}
		fmt.Printf("assembled %s with %v in %.1fs (%d packages imported, %d image bytes verified)\n",
			name, primaries, ret.Seconds, len(ret.Imported), n)
		if a.verbose {
			printPhases(ret.Phases)
		}
	}

	if a.sync {
		st, err := cl.Sync(ctx)
		if err != nil {
			fail(err)
		}
		fmt.Printf("synced: %d metadata ops committed (%d metadata bytes, %d segment bytes)\n", st.MetaOps, st.MetaBytes, st.SegmentBytes)
	}

	if a.compact {
		cst, err := cl.Compact(ctx)
		if err != nil {
			fail(err)
		}
		fmt.Printf("compacted: %d blob segment(s) rewritten, %.3f GB reclaimed, %.3f GB dead remaining\n",
			cst.SegmentsCompacted, gb(cst.BytesReclaimed), gb(cst.DeadBytes))
		printRemoteStats(ctx, cl, "repository now")
	}

	if a.vacuum {
		vst, err := cl.Vacuum(ctx)
		if err != nil {
			fail(err)
		}
		fmt.Printf("vacuumed: %d package(s), %d user-data archive(s), %d lifecycle record(s), %d orphan blob(s) removed, %.3f GB reclaimed\n",
			vst.PackagesRemoved, vst.UserDataRemoved, vst.MetaRemoved, vst.BlobsReleased, gb(vst.BytesReclaimed))
		printRemoteStats(ctx, cl, "repository now")
	}

	if a.dotFile != "" {
		dot, err := cl.GraphDOT(ctx)
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(a.dotFile, []byte(dot), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("master graphs written to %s\n", a.dotFile)
	}

	if a.saveFile != "" {
		f, err := os.Create(a.saveFile)
		if err != nil {
			fail(err)
		}
		if _, err := cl.Snapshot(ctx, f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("repository snapshot written to %s\n", a.saveFile)
	}
}

// printRemoteStats mirrors the local printRepoStats split between live
// and physical size: a disk-backed server reports its on-disk footprint
// and dead (reclaimable) share alongside the deduplicated live bytes.
func printRemoteStats(ctx context.Context, cl *client.Client, label string) {
	st, err := cl.Stats(ctx)
	if err != nil {
		fail(err)
	}
	line := fmt.Sprintf("%s: %d VMIs, %d base image(s), %d packages, %.2f GB live",
		label, st.VMIs, st.Bases, st.Packages, float64(catalog.Paper(st.TotalBytes))/1e9)
	if st.DiskBytes > 0 {
		line += fmt.Sprintf(" (%.2f GB on disk, %.2f GB dead)", gb(st.DiskBytes), gb(st.DeadBytes))
	}
	fmt.Println(line)
	printTenants(st.Tenants)
	if r := st.Repl; r != nil {
		switch r.Role {
		case "follower":
			fmt.Printf("replication: follower of %s, epoch %d, applied %d bytes, lag %d bytes (%d batches / %d ops applied)\n",
				r.WriterURL, r.Epoch, r.AppliedBytes, r.LagBytes, r.Batches, r.Ops)
		default:
			fmt.Printf("replication: writer, epoch %d, %d durable WAL bytes\n", r.Epoch, r.DurableBytes)
		}
	}
}
