// Command expelctl drives an Expelliarmus session from the command line:
// it builds synthetic evaluation images, publishes them into a repository,
// retrieves or assembles VMIs and reports repository statistics — the
// Fig. 2 workflow end to end.
//
// The repository is in-process by default. With -server ADDR every
// operation instead runs against a live expelserverd: images are built
// locally, streamed up as wire envelopes, and retrievals stream back as
// verified byte streams. Repository-side options (-no-dedup,
// -no-base-selection, -load) belong to whoever owns the repository and
// are rejected in remote mode.
//
// Usage:
//
//	expelctl -publish Mini,Redis,Base [-retrieve Redis] [-assemble combo=redis-server+apache2] [-v]
//	expelctl -server 127.0.0.1:9747 -publish Redis -retrieve Redis
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"expelliarmus"
	"expelliarmus/internal/catalog"
)

// gb converts a store-scaled byte count to paper-scale gigabytes, the
// same presentation RepoStats uses for its GB fields.
func gb(b int64) float64 { return float64(catalog.Paper(b)) / 1e9 }

func main() {
	publish := flag.String("publish", "", "comma-separated template names to build and publish, or 'all'")
	retrieve := flag.String("retrieve", "", "VMI name to retrieve after publishing")
	assemble := flag.String("assemble", "", "custom assembly as name=pkg1+pkg2+...")
	noDedup := flag.Bool("no-dedup", false, "disable semantic dedup (the paper's 'Semantic' variant)")
	noBaseSel := flag.Bool("no-base-selection", false, "disable base image selection (Algorithm 2)")
	remove := flag.String("remove", "", "VMI name to remove (with garbage collection)")
	tenant := flag.String("tenant", "", "tenant account to charge published bytes to (visible in stats, enforced against server quotas)")
	ttl := flag.Duration("ttl", 0, "publish with this time-to-live: images expire (become removable by the expiry sweep) this long from now")
	expiresAt := flag.String("expires-at", "", "publish with an absolute expiry timestamp (RFC 3339, e.g. 2026-08-08T12:00:00Z); mutually exclusive with -ttl")
	vacuum := flag.Bool("vacuum", false, "reclaim dangling repository state (unreferenced packages, orphaned archives, blob orphans) after the other operations")
	syncFlag := flag.Bool("sync", false, "sync the repository after the other operations, making published state durable (and visible to follower daemons)")
	compact := flag.Bool("compact", false, "force compaction (blob segments + metadata WAL) after the other operations and report what was reclaimed")
	saveFile := flag.String("save", "", "write the repository snapshot to this file when done")
	loadFile := flag.String("load", "", "restore the repository from this snapshot file first")
	dotFile := flag.String("dot", "", "write the master graph(s) in Graphviz DOT format to this file")
	serverAddr := flag.String("server", "", "run against a live expelserverd at this address instead of in-process")
	verbose := flag.Bool("v", false, "verbose per-operation phase breakdowns")
	flag.Parse()

	expiry, err := resolveExpiry(*ttl, *expiresAt)
	if err != nil {
		fail(err)
	}
	pubOpts := expelliarmus.PublishOptions{Tenant: *tenant, ExpiresAt: expiry}

	if *serverAddr != "" {
		runRemote(remoteArgs{
			addr:     *serverAddr,
			publish:  *publish,
			retrieve: *retrieve,
			assemble: *assemble,
			remove:   *remove,
			sync:     *syncFlag,
			compact:  *compact,
			vacuum:   *vacuum,
			saveFile: *saveFile,
			loadFile: *loadFile,
			dotFile:   *dotFile,
			noDedup:   *noDedup,
			noBaseSel: *noBaseSel,
			verbose:   *verbose,
			pubOpts:   pubOpts,
		})
		return
	}

	if *publish == "" && *loadFile == "" {
		fmt.Fprintln(os.Stderr, "expelctl: -publish is required; templates:")
		fmt.Fprintf(os.Stderr, "  %s\n", strings.Join(expelliarmus.Templates(), ", "))
		os.Exit(2)
	}

	opts := expelliarmus.Options{
		NoSemanticDedup: *noDedup,
		NoBaseSelection: *noBaseSel,
	}
	var sys *expelliarmus.System
	if *loadFile != "" {
		snap, err := os.ReadFile(*loadFile)
		if err != nil {
			fail(err)
		}
		sys, err = expelliarmus.Restore(snap, opts)
		if err != nil {
			fail(err)
		}
		fmt.Printf("restored repository from %s\n", *loadFile)
	} else {
		sys = expelliarmus.NewWithOptions(opts)
	}

	var names []string
	switch {
	case *publish == "all":
		names = expelliarmus.Templates()
	case *publish != "":
		names = strings.Split(*publish, ",")
	}
	for _, name := range names {
		name = strings.TrimSpace(name)
		img, err := sys.BuildImage(name)
		if err != nil {
			fail(err)
		}
		st, err := img.Stats()
		if err != nil {
			fail(err)
		}
		pub, err := sys.PublishWith(img, pubOpts)
		if err != nil {
			fail(err)
		}
		fmt.Printf("published %-14s mounted %.3f GB, %6d files, SimG %.2f, %5.1fs, exported %d pkgs (skipped %d)\n",
			name, st.MountedGB, st.Files, pub.Similarity, pub.Seconds, len(pub.Exported), pub.Skipped)
		if *verbose {
			printPhases(pub.Phases)
		}
	}

	printRepoStats(sys, "repository")

	if *retrieve != "" {
		img, ret, err := sys.Retrieve(*retrieve)
		if err != nil {
			fail(err)
		}
		fmt.Printf("retrieved %s in %.1fs (%d packages imported)\n",
			img.Name(), ret.Seconds, len(ret.Imported))
		if *verbose {
			printPhases(ret.Phases)
		}
	}

	if *remove != "" {
		if err := sys.Remove(*remove); err != nil {
			fail(err)
		}
		fmt.Printf("removed %s\n", *remove)
		printRepoStats(sys, "repository now")
	}

	if *assemble != "" {
		name, spec, ok := strings.Cut(*assemble, "=")
		if !ok {
			fail(fmt.Errorf("bad -assemble %q, want name=pkg1+pkg2", *assemble))
		}
		primaries := strings.Split(spec, "+")
		img, ret, err := sys.Assemble(name, primaries, "")
		if err != nil {
			fail(err)
		}
		fmt.Printf("assembled %s with %v in %.1fs (%d packages imported)\n",
			img.Name(), primaries, ret.Seconds, len(ret.Imported))
		if *verbose {
			printPhases(ret.Phases)
		}
	}

	if *syncFlag {
		if !sys.Persistent() {
			fmt.Println("sync: repository is memory-backed, nothing durable to sync (use -server against a disk-backed daemon)")
		} else {
			st, err := sys.Sync()
			if err != nil {
				fail(err)
			}
			fmt.Printf("synced: %d metadata ops committed (%d metadata bytes, %d segment bytes)\n", st.MetaOps, st.MetaBytes, st.SegmentBytes)
		}
	}

	if *compact {
		if !sys.Persistent() {
			// The local CLI runs memory-backed (Save/Load snapshots), where
			// released blobs free immediately — nothing durable to compact.
			fmt.Println("compact: repository is memory-backed, nothing on disk to reclaim (use -server against a disk-backed daemon)")
		} else {
			cst, err := sys.Compact()
			if err != nil {
				fail(err)
			}
			fmt.Printf("compacted: %d blob segment(s) rewritten, %.3f GB reclaimed, %.3f GB dead remaining\n",
				cst.SegmentsCompacted, gb(cst.BytesReclaimed), gb(cst.DeadBytes))
			printRepoStats(sys, "repository now")
		}
	}

	if *vacuum {
		vst, err := sys.Vacuum()
		if err != nil {
			fail(err)
		}
		fmt.Printf("vacuumed: %d package(s), %d user-data archive(s), %d lifecycle record(s), %d orphan blob(s) removed, %.3f GB reclaimed\n",
			vst.PackagesRemoved, vst.UserDataRemoved, vst.MetaRemoved, vst.BlobsReleased, gb(vst.BytesReclaimed))
		printRepoStats(sys, "repository now")
	}

	if *dotFile != "" {
		dot, err := sys.MasterGraphDOT()
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*dotFile, []byte(dot), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("master graphs written to %s\n", *dotFile)
	}

	saveIfRequested(sys, *saveFile)
}

// printRepoStats reports the catalog plus its storage footprint, keeping
// the live (deduplicated) size and the physical on-disk size apart: a
// disk-backed repository can hold garbage awaiting compaction, and
// conflating the two is exactly how dead bytes go unnoticed.
func printRepoStats(sys *expelliarmus.System, label string) {
	rs := sys.RepoStats()
	line := fmt.Sprintf("%s: %d VMIs, %d base image(s), %d packages, %.2f GB live",
		label, rs.VMIs, rs.BaseImages, rs.Packages, rs.TotalGB)
	if rs.DiskGB > 0 {
		line += fmt.Sprintf(" (%.2f GB on disk, %.2f GB dead)", rs.DiskGB, rs.DeadGB)
	}
	fmt.Println(line)
	printTenants(sys.TenantStats())
}

// printTenants lists per-tenant charged bytes, sorted by name.
func printTenants(ts map[string]int64) {
	if len(ts) == 0 {
		return
	}
	tenants := make([]string, 0, len(ts))
	for t := range ts {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		fmt.Printf("    tenant %-14s %.3f GB charged\n", t, gb(ts[t]))
	}
}

// resolveExpiry turns the mutually-exclusive -ttl / -expires-at flags
// into one Unix-seconds timestamp (zero: never expires).
func resolveExpiry(ttl time.Duration, expiresAt string) (int64, error) {
	switch {
	case ttl != 0 && expiresAt != "":
		return 0, fmt.Errorf("-ttl and -expires-at are mutually exclusive")
	case ttl < 0:
		return 0, fmt.Errorf("-ttl must be positive, got %v", ttl)
	case ttl > 0:
		return time.Now().Add(ttl).Unix(), nil
	case expiresAt != "":
		t, err := time.Parse(time.RFC3339, expiresAt)
		if err != nil {
			return 0, fmt.Errorf("bad -expires-at: %w", err)
		}
		return t.Unix(), nil
	}
	return 0, nil
}

func saveIfRequested(sys *expelliarmus.System, file string) {
	if file == "" {
		return
	}
	snap, err := sys.Save()
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(file, snap, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("repository snapshot written to %s\n", file)
}

func printPhases(phases map[string]float64) {
	keys := make([]string, 0, len(phases))
	for k := range phases {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("    %-12s %6.2fs\n", k, phases[k])
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "expelctl: %v\n", err)
	os.Exit(1)
}
