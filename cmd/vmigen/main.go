// Command vmigen materialises the synthetic evaluation VMI set to disk as
// serialized qcow2-like image files plus a manifest, the equivalent of the
// paper's virt-builder scripts. The generated files can be inspected,
// diffed across runs (they are fully deterministic) or fed to external
// tooling.
//
// Usage:
//
//	vmigen -out ./images [-templates Mini,Redis | all] [-ide-builds 0]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"expelliarmus/internal/builder"
	"expelliarmus/internal/catalog"
)

func main() {
	out := flag.String("out", "images", "output directory")
	templates := flag.String("templates", "all", "comma-separated template names, or 'all'")
	ideBuilds := flag.Int("ide-builds", 0, "additionally generate n successive IDE builds")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}
	var tpls []catalog.Template
	if *templates == "all" {
		tpls = catalog.Paper19()
	} else {
		for _, name := range strings.Split(*templates, ",") {
			t, ok := catalog.Find(strings.TrimSpace(name))
			if !ok {
				fail(fmt.Errorf("unknown template %q", name))
			}
			tpls = append(tpls, t)
		}
	}
	tpls = append(tpls, catalog.IDEBuilds(*ideBuilds)...)

	b := builder.New(catalog.NewUniverse())
	manifest := &strings.Builder{}
	fmt.Fprintf(manifest, "# synthetic VMI set (byte scale 1/%d, file scale 1/%d)\n",
		catalog.ByteScale, catalog.FileScale)
	fmt.Fprintf(manifest, "# name  file  bytes  mounted-paper-GB  files-paper\n")
	for _, t := range tpls {
		img, err := b.Build(t)
		if err != nil {
			fail(err)
		}
		data := img.Serialize()
		file := filepath.Join(*out, t.Name+".qgo")
		if err := os.WriteFile(file, data, 0o644); err != nil {
			fail(err)
		}
		st, err := img.Stats()
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(manifest, "%s  %s  %d  %.3f  %d\n",
			t.Name, filepath.Base(file), len(data),
			float64(catalog.Paper(st.MountedBytes))/1e9, catalog.PaperFiles(st.Files))
		fmt.Printf("wrote %s (%d bytes, %.3f paper-GB mounted)\n",
			file, len(data), float64(catalog.Paper(st.MountedBytes))/1e9)
	}
	if err := os.WriteFile(filepath.Join(*out, "MANIFEST.txt"), []byte(manifest.String()), 0o644); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "vmigen: %v\n", err)
	os.Exit(1)
}
