// Command expelserverd serves one Expelliarmus repository over HTTP: the
// network face of the Fig. 2 workflow. Clients publish image envelopes,
// retrieve and assemble VMIs as verified byte streams, remove images,
// and read stats — all against one shared repository, memory-backed by
// default or durable on disk with -store.
//
// Usage:
//
//	expelserverd [-addr 127.0.0.1:9747] [-store DIR] [-cache BYTES]
//	             [-parallelism N] [-wal-compact BYTES]
//	             [-blob-compact-ratio R] [-sync-interval D]
//	             [-expire-interval D] [-quota tenant=bytes,...]
//	             [-tls-cert FILE -tls-key FILE]
//	             [-follow URL [-follow-poll D]]
//
// With -store the repository lives in append-only segment files plus a
// metadata WAL under DIR and survives restarts; shutdown (SIGINT or
// SIGTERM) drains in-flight requests, then syncs and closes the store.
// -sync-interval makes published state durable (and visible to
// followers) within that bound by syncing in the background; the WAL
// group commit coalesces these with client-driven syncs, so a quiet
// interval costs one small append and an idle one costs nothing.
// With -tls-cert/-tls-key the server speaks HTTPS (and HTTP/2, which the
// standard library enables over TLS automatically).
//
// -expire-interval runs the TTL sweep in the background: images
// published with an expiry timestamp (expelctl -ttl / -expires-at) are
// removed — with full garbage collection — within that bound of
// expiring. -quota caps tenants' live bytes ("alice=100000000,bob=5e9"
// style decimal byte counts): a publish charged to a capped tenant that
// would exceed its cap is rejected with 413 and error kind
// "quota-exceeded". Both are writer-side options; followers replicate
// the writer's expiries like any other removal.
//
// With -follow the daemon is a read-only replica of the writer daemon at
// URL: it tails the writer's snapshot + WAL shipping endpoints, serves
// retrieve/assemble/stats from the replicated metadata (pulling blobs it
// has not yet cached from the writer on first use), and answers mutating
// requests with 403 and error kind "read-only". -store then names the
// replica's local blob cache directory (in-memory when omitted).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"expelliarmus/internal/blobstore"
	"expelliarmus/internal/blobstore/diskstore"
	"expelliarmus/internal/catalog"
	"expelliarmus/internal/core"
	"expelliarmus/internal/replica"
	"expelliarmus/internal/server"
	"expelliarmus/internal/simio"
	"expelliarmus/internal/vmirepo"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9747", "listen address")
	store := flag.String("store", "", "repository directory for the durable disk backend (empty: in-memory)")
	cache := flag.Int64("cache", 0, "retrieval-cache bytes (0 disables)")
	parallelism := flag.Int("parallelism", 0, "worker-goroutine bound per operation (<=1 sequential)")
	walCompact := flag.Int64("wal-compact", 0, "metadata-WAL compaction threshold bytes (0 keeps the default)")
	blobRatio := flag.Float64("blob-compact-ratio", 0, "dead-byte fraction at which sealed blob segments compact on sync (0 keeps the default, negative disables the automatic trigger)")
	syncInterval := flag.Duration("sync-interval", 0, "background sync period for a disk-backed repository: published state becomes durable (and visible to followers) within this bound (0 syncs only on shutdown or explicit request)")
	expireInterval := flag.Duration("expire-interval", 0, "background TTL-sweep period: images published with an expiry timestamp are removed within this bound of expiring (0 disables the sweep)")
	quotas := flag.String("quota", "", "per-tenant live-byte caps as tenant=bytes[,tenant=bytes...]; publishes that would exceed a cap are rejected")
	tlsCert := flag.String("tls-cert", "", "TLS certificate file (with -tls-key enables HTTPS)")
	tlsKey := flag.String("tls-key", "", "TLS private key file")
	follow := flag.String("follow", "", "writer daemon URL to follow as a read-only replica")
	followPoll := flag.Duration("follow-poll", 500*time.Millisecond, "replica commit-poll interval")
	flag.Parse()

	if (*tlsCert == "") != (*tlsKey == "") {
		fail(fmt.Errorf("-tls-cert and -tls-key must be given together"))
	}

	tenantQuotas, err := parseQuotas(*quotas)
	if err != nil {
		fail(err)
	}

	dev := simio.NewDevice(simio.PaperProfile().Scaled(catalog.ByteScale, catalog.FileScale))
	opts := core.Options{Parallelism: *parallelism, CacheBytes: *cache, TenantQuotas: tenantQuotas}
	var sys *core.System
	var rep *replica.Replica
	bgCtx, stopBg := context.WithCancel(context.Background())
	defer stopBg()
	switch {
	case *follow != "":
		var local blobstore.Backend = blobstore.New()
		if *store != "" {
			ds, err := diskstore.Open(*store, diskstore.Options{})
			if err != nil {
				fail(err)
			}
			local = ds
		}
		rep = replica.New(*follow, local, dev, replica.Options{Poll: *followPoll, Logf: log.Printf})
		sys = core.NewSystemWithRepo(rep.Repo(), dev, opts)
		go rep.Run(bgCtx)
		log.Printf("expelserverd: following %s (blob cache: %s)", *follow, storeDesc(*store))
	case *store == "":
		sys = core.NewSystem(dev, opts)
		log.Printf("expelserverd: in-memory repository")
	default:
		repo, err := vmirepo.OpenAtOpts(*store, dev, vmirepo.OpenOptions{
			WALCompactBytes:      *walCompact,
			BlobCompactDeadRatio: *blobRatio,
		})
		if err != nil {
			fail(err)
		}
		sys = core.NewSystemWithRepo(repo, dev, opts)
		log.Printf("expelserverd: disk repository at %s", *store)
	}

	if *syncInterval > 0 && *follow == "" && *store != "" {
		go func() {
			tick := time.NewTicker(*syncInterval)
			defer tick.Stop()
			for {
				select {
				case <-bgCtx.Done():
					return
				case <-tick.C:
					if _, err := sys.Sync(); err != nil {
						log.Printf("expelserverd: background sync: %v", err)
					}
				}
			}
		}()
	}

	// TTL sweep — writer only; followers see the writer's expiries as
	// replicated removals.
	if *expireInterval > 0 && *follow == "" {
		go func() {
			tick := time.NewTicker(*expireInterval)
			defer tick.Stop()
			for {
				select {
				case <-bgCtx.Done():
					return
				case <-tick.C:
					removed, err := sys.ExpireAt(time.Now().Unix())
					if err != nil {
						log.Printf("expelserverd: expiry sweep: %v", err)
					}
					if len(removed) > 0 {
						log.Printf("expelserverd: expired %d image(s): %v", len(removed), removed)
					}
				}
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	h := server.New(sys)
	if rep != nil {
		h.SetReplica(rep)
	}
	srv := &http.Server{Handler: h}
	serveErr := make(chan error, 1)
	go func() {
		if *tlsCert != "" {
			serveErr <- srv.ServeTLS(ln, *tlsCert, *tlsKey)
		} else {
			serveErr <- srv.Serve(ln)
		}
	}()
	log.Printf("expelserverd: serving on %s", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fail(err)
	}

	log.Printf("expelserverd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("expelserverd: shutdown: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("expelserverd: serve: %v", err)
	}
	stopBg() // replica loop and background sync, before the repository closes
	if rep != nil {
		rep.Close()
	}
	// Close is where a disk store's sticky failure surfaces; exit nonzero
	// so an operator (or CI) cannot miss it.
	if err := sys.Close(); err != nil {
		fail(fmt.Errorf("closing repository: %w", err))
	}
}

// parseQuotas parses "tenant=bytes[,tenant=bytes...]" into the per-tenant
// cap map ("" for no caps).
func parseQuotas(spec string) (map[string]int64, error) {
	if spec == "" {
		return nil, nil
	}
	out := map[string]int64{}
	for _, part := range strings.Split(spec, ",") {
		tenant, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || tenant == "" {
			return nil, fmt.Errorf("bad -quota entry %q, want tenant=bytes", part)
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -quota bytes for tenant %q: %q", tenant, val)
		}
		out[tenant] = n
	}
	return out, nil
}

func storeDesc(dir string) string {
	if dir == "" {
		return "in-memory"
	}
	return dir
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "expelserverd: %v\n", err)
	os.Exit(1)
}
