// Command expelbench regenerates the paper's evaluation: Table II, the
// repository-growth figures (3a–3c), the publish-time figures (4a–4b), the
// retrieval figures (5a–5b) and the ablation studies, printing each as an
// aligned text table with the paper's reference values where available.
//
// Usage:
//
//	expelbench [-exp all|table2,fig3a,fig3b,fig3c,fig4a,fig4b,fig5a,fig5b,abl1,abl2,abl3,abl4,conc,persist,cachehit,storm,sync,stream,remote,churn,replica,lifecycle] [-ide-builds 40] [-clients 8] [-backend memory|disk] [-store-root DIR] [-cache BYTES] [-wal-compact BYTES] [-warm-iters 3] [-storm-publishes 120] [-storm-bursts 3] [-storm-burst-clients 32] [-sync-deltas 5] [-stream-bulk MIB] [-remote-clients 16] [-remote-bulk MIB] [-churn-rounds 6] [-replica-rounds 4] [-lifecycle-tenants 3]
//
// Every experiment runs against the blob backend named by -backend: the
// in-memory sharded store (the default) or the durable on-disk segment
// store, in which case each benchmarked system gets a fresh repository
// directory under -store-root (OS temp dir when unset). The persist
// experiment always uses the disk backend — it measures full vs
// incremental sync and reopen. -cache gives every benchmarked system a
// retrieval cache of that many bytes (modeled results are unchanged; the
// cache is cost-transparent); the cachehit experiment measures cold vs
// warm retrieval of the Table II catalog and enables a 256 MiB cache for
// itself when -cache is unset. The storm experiment (also cache-enabled
// by default) races hot-image retrievals against publishes on unrelated
// bases and fires concurrent-miss bursts, verifying the generation
// striping and miss-singleflight contracts. The sync experiment (always
// on the disk backend) measures Sync cost against delta size: per-image
// incremental syncs must come in at least 5x cheaper than the full
// metadata rewrite a compaction performs, or the experiment errors.
// -wal-compact tunes the metadata-WAL compaction threshold of every
// disk-backed repository (the sync experiment pins its own). The stream
// experiment retrieves images whose bulk payload grows 100x (up to
// -stream-bulk MiB) through both the streaming and the materializing
// retrieval paths and errors unless streamed memory stays flat under a
// constant ceiling, the materializing path allocates at least 5x more at
// the largest scale, and both paths produce byte-identical images; it
// pins the cache off for itself. The remote experiment serves each scale
// over a real loopback HTTP server (cmd/expelserverd's handler) and
// drives -remote-clients concurrent network retrievals of images whose
// bulk grows 100x (up to -remote-bulk MiB), erroring unless every remote
// stream is byte-identical to an in-process retrieval and total
// allocation stays under a flat per-client ceiling; like stream, it pins
// the cache off. The churn experiment (always on the disk backend) drives
// an identical publish/remove loop against two repositories — dead-ratio
// blob compaction enabled vs disabled — and errors unless the enabled
// one keeps steady-state disk usage within 2x the live bytes while the
// disabled one demonstrably grows past it, with every surviving image
// byte-identical across the two. The replica experiment (writer always on
// the disk backend — replication ships the metadata WAL) serves a writer
// daemon over loopback HTTP while an in-process follower tails its
// snapshot + WAL endpoints across -replica-rounds publish rounds
// (compacting on alternate rounds so the follower crosses epoch
// switches); it errors unless the follower's metadata matches the writer
// byte-for-byte after every catch-up, every image streams from the
// follower byte-identical to the writer's own retrieval, a warm second
// pass causes zero read-through blob fetches, the follower rejects
// mutation, and a brand-new follower's snapshot bootstrap stays within
// the streaming allocation bound. The lifecycle experiment publishes one
// keeper and two TTL'd images per tenant (-lifecycle-tenants), runs the
// TTL sweep and a vacuum, and errors unless expired images answer
// not-found, per-tenant accounting returns exactly to its keeper-only
// value, the disk backend's footprint lands within 1.1x the surviving
// live bytes, keepers stream byte-identically to their pre-expiry
// reference, a second vacuum reclaims nothing, and a loopback quota leg
// rejects an over-quota publish with the typed quota-exceeded error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"expelliarmus/internal/bench"
)

func main() {
	exps := flag.String("exp", "all", "comma-separated experiments to run, or 'all'")
	ideBuilds := flag.Int("ide-builds", 40, "number of successive IDE builds for fig3c")
	clients := flag.Int("clients", 8, "worker-pool bound for the concurrent-publish scenario")
	backend := flag.String("backend", "", "blob backend for every benchmarked system: memory (default) or disk")
	storeRoot := flag.String("store-root", "", "directory for disk-backed repositories (default: OS temp dir)")
	cacheBytes := flag.Int64("cache", 0, "retrieval-cache bytes for every benchmarked system (0 disables; cachehit defaults to 256 MiB for itself)")
	warmIters := flag.Int("warm-iters", 3, "warm retrievals per image in the cachehit experiment")
	stormPublishes := flag.Int("storm-publishes", 120, "unrelated-base publishes in the storm experiment")
	stormBursts := flag.Int("storm-bursts", 3, "concurrent-miss bursts in the storm experiment")
	stormBurstClients := flag.Int("storm-burst-clients", 32, "concurrent retrievals per storm burst")
	walCompact := flag.Int64("wal-compact", 0, "metadata-WAL compaction threshold bytes for disk-backed repositories (0 keeps the default)")
	syncDeltas := flag.Int("sync-deltas", 5, "single-image publish+Sync rounds in the sync experiment")
	streamBulk := flag.Int64("stream-bulk", 200, "largest bulk payload in MiB for the stream experiment (scales 1x/10x/100x up to this)")
	remoteClients := flag.Int("remote-clients", 16, "concurrent network clients in the remote experiment")
	remoteBulk := flag.Int64("remote-bulk", 64, "largest bulk payload in MiB for the remote experiment (scales 1x/10x/100x up to this)")
	churnRounds := flag.Int("churn-rounds", 6, "publish/remove rounds in the churn experiment")
	replicaRounds := flag.Int("replica-rounds", 4, "publish/catch-up rounds in the replica experiment (capped at the 19-image catalog)")
	lifecycleTenants := flag.Int("lifecycle-tenants", 3, "tenants in the lifecycle experiment (each publishes one keeper and two TTL'd images)")
	flag.Parse()

	selected := map[string]bool{}
	if *exps == "all" {
		for _, e := range []string{"table2", "fig3a", "fig3b", "fig3c", "fig4a", "fig4b", "fig5a", "fig5b", "abl1", "abl2", "abl3", "abl4", "conc", "persist", "cachehit", "storm", "sync", "stream", "remote", "churn", "replica", "lifecycle"} {
			selected[e] = true
		}
	} else {
		for _, e := range strings.Split(*exps, ",") {
			selected[strings.TrimSpace(e)] = true
		}
	}

	r := bench.NewRunner()
	if *backend != "" {
		r.Backend = *backend
	}
	if *storeRoot != "" {
		r.StoreRoot = *storeRoot
	}
	if *cacheBytes != 0 {
		r.CacheBytes = *cacheBytes
	}
	if *walCompact != 0 {
		r.WALCompactBytes = *walCompact
	}
	run := func(name string, fn func() (fmt.Stringer, error)) {
		if !selected[name] {
			return
		}
		start := time.Now()
		out, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "expelbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (generated in %.1fs wall clock) ===\n%s\n", name, time.Since(start).Seconds(), out)
	}

	run("table2", func() (fmt.Stringer, error) { return r.TableII() })
	run("fig3a", func() (fmt.Stringer, error) { return fig(r.Fig3a()) })
	run("fig3b", func() (fmt.Stringer, error) { return fig(r.Fig3b()) })
	run("fig3c", func() (fmt.Stringer, error) { return fig(r.Fig3c(*ideBuilds)) })
	run("fig4a", func() (fmt.Stringer, error) { return fig(r.Fig4a()) })
	run("fig4b", func() (fmt.Stringer, error) { return fig(r.Fig4b()) })
	run("fig5a", func() (fmt.Stringer, error) { return fig(r.Fig5a()) })
	run("fig5b", func() (fmt.Stringer, error) { return fig(r.Fig5b()) })
	run("abl1", func() (fmt.Stringer, error) { return r.AblationChunking() })
	run("abl2", func() (fmt.Stringer, error) { return r.AblationMasterGraph([]int{1, 5, 10, 19}) })
	run("abl3", func() (fmt.Stringer, error) { return r.AblationBaseSelection() })
	run("abl4", func() (fmt.Stringer, error) { return r.AblationUploadOrder() })
	run("conc", func() (fmt.Stringer, error) { return r.ConcurrentPublish(*clients) })
	run("persist", func() (fmt.Stringer, error) { return r.Persistence() })
	run("cachehit", func() (fmt.Stringer, error) { return r.CacheHit(*warmIters) })
	run("storm", func() (fmt.Stringer, error) {
		return r.Storm(*stormPublishes, *clients, *stormBursts, *stormBurstClients)
	})
	run("sync", func() (fmt.Stringer, error) { return r.SyncDelta(*syncDeltas) })
	run("stream", func() (fmt.Stringer, error) { return r.StreamFlatRSS(*streamBulk << 20) })
	run("remote", func() (fmt.Stringer, error) { return r.RemoteFlatRSS(*remoteBulk<<20, *remoteClients) })
	run("churn", func() (fmt.Stringer, error) { return r.Churn(*churnRounds) })
	run("replica", func() (fmt.Stringer, error) { return r.ReplicaConvergence(*replicaRounds) })
	run("lifecycle", func() (fmt.Stringer, error) { return r.Lifecycle(*lifecycleTenants) })

	// Closing disk-backed systems is where a sticky store failure (e.g. a
	// full filesystem mid-run) surfaces; results printed above would
	// silently reflect a partial store otherwise.
	if err := r.CloseAll(); err != nil {
		fmt.Fprintf(os.Stderr, "expelbench: closing disk-backed systems: %v\n", err)
		os.Exit(1)
	}

	if selected["fig3a"] || selected["fig3b"] || selected["fig3c"] {
		fmt.Println("paper reference endpoints (GB):")
		for _, name := range []string{"fig3a", "fig3b", "fig3c"} {
			if selected[name] {
				fmt.Printf("  %s: %v\n", name, bench.PaperFig3[name])
			}
		}
	}
}

func fig(f *bench.Figure, err error) (fmt.Stringer, error) {
	if err != nil {
		return nil, err
	}
	return f, nil
}
