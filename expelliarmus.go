// Package expelliarmus is a Go reproduction of "Semantics-aware Virtual
// Machine Image Management in IaaS Clouds" (Saurabh et al., IPDPS 2019):
// a VMI repository that models images as semantic graphs, deduplicates
// them at the level of base images and software packages, and reassembles
// VMIs on demand.
//
// This root package is the public facade. A System owns an Expelliarmus
// repository; images are built from the synthetic evaluation catalog (or
// custom package selections), published (semantic decomposition,
// Algorithm 1 + base-image selection, Algorithm 2) and retrieved or
// assembled (Algorithm 3). Baseline stores (qcow2, gzip, Mirage, Hemera,
// block-level dedup) are available for comparison, and the bench runner
// regenerates every table and figure of the paper's evaluation.
//
// Quick start:
//
//	sys := expelliarmus.New()
//	img, _ := sys.BuildImage("Redis")
//	pub, _ := sys.Publish(img)
//	fmt.Printf("similarity %.2f, repo %.2f GB\n", pub.Similarity, sys.RepoStats().TotalGB)
//	redis, ret, _ := sys.Retrieve("Redis")
package expelliarmus

import (
	"fmt"
	"io"

	"expelliarmus/internal/builder"
	"expelliarmus/internal/catalog"
	"expelliarmus/internal/chunker"
	"expelliarmus/internal/containerize"
	"expelliarmus/internal/core"
	"expelliarmus/internal/pkgmgr"
	"expelliarmus/internal/simio"
	"expelliarmus/internal/stores"
	"expelliarmus/internal/vmi"
	"expelliarmus/internal/vmirepo"
	"expelliarmus/internal/wire"
)

// Options configure a System.
type Options struct {
	// NoSemanticDedup disables the repository-existence check during
	// package export (the paper's "Semantic" comparison variant).
	NoSemanticDedup bool
	// NoBaseSelection disables base-image selection (Algorithm 2).
	NoBaseSelection bool
	// Parallelism bounds the total worker goroutines per operation: a solo
	// Publish/Retrieve fans out per package, while PublishAll/RetrieveAll
	// fan out across images (with sequential per-image internals), so the
	// bound never compounds. Values <= 1 mean strictly sequential. For an
	// operation running alone, Parallelism affects
	// wall-clock time only — its modeled Seconds() are identical at every
	// setting. When operations overlap (PublishAll, or explicit concurrent
	// calls), modeled totals can shift slightly with the interleaving:
	// e.g. two publishes racing on one shared package may both pay the
	// repack cost sequential upload would have deduplicated away.
	Parallelism int
	// CacheBytes bounds the retrieval cache: a size-bounded LRU of
	// recently assembled images that serves repeat Retrieve/RetrieveAll
	// calls without re-running assembly. Zero (the default) disables it.
	// The cache changes wall-clock time only — a hit returns the same
	// image bytes and the same modeled RetrieveResult a fresh assembly
	// would — and is invalidated by per-base striped repository
	// generations: a Publish, Remove or user-data change touching an
	// entry's base image or VMI makes it unreachable, while mutations on
	// unrelated bases leave warm entries servable (package GC
	// conservatively invalidates everything). Concurrent misses of one
	// image coalesce behind a single assembly, so a retrieval storm on a
	// cold popular image runs it once. Cached entries are hash-verified
	// on every hit; a corrupted entry surfaces as an error, never as
	// wrong bytes. See CacheStats for effectiveness counters.
	CacheBytes int64
	// WALCompactBytes tunes disk-backed Systems (OpenAt): the metadata
	// write-ahead log is compacted — rewritten as a fresh full snapshot
	// with an empty log — when a Sync would grow it beyond this size.
	// Zero means the default (8 MiB). Memory-backed Systems ignore it.
	// See also Compact for forcing a compaction explicitly.
	WALCompactBytes int64
	// BlobCompactDeadRatio tunes disk-backed Systems (OpenAt): a sealed
	// blob segment whose dead-byte fraction (space released blobs left
	// behind) reaches this ratio is compacted — surviving records
	// rewritten, the file retired — by the next Sync. Zero means the
	// default (0.5); negative disables the automatic trigger, leaving
	// reclamation to explicit Compact calls. Memory-backed Systems ignore
	// it (they hold no garbage).
	BlobCompactDeadRatio float64
	// TenantQuotas caps each tenant's live repository bytes. A publish
	// charged to a capped tenant (PublishOptions.Tenant) is rejected with
	// ErrQuotaExceeded before any repository graph mutation when it would
	// push the tenant's recorded usage past its cap. Tenants absent from
	// the map (or mapped to zero) are unlimited; publishes without a
	// tenant are never capped. See TenantStats for current usage.
	TenantQuotas map[string]int64
}

// System is an Expelliarmus VMI management system over an in-memory
// repository, with an image builder for the synthetic evaluation catalog.
//
// A System is safe for concurrent use: any number of goroutines may build,
// publish, retrieve, assemble and remove images (and Save snapshots)
// against the same System. Operations on the same image name should not
// overlap — concurrently removing a VMI while retrieving it can surface a
// not-found error mid-assembly — but the repository itself stays
// consistent regardless.
type System struct {
	dev *simio.Device
	sys *core.System
	b   *builder.Builder
}

// New creates a System with the paper-calibrated cost model.
func New() *System { return NewWithOptions(Options{}) }

// newDevice returns the paper-calibrated cost model scaled to the
// generated workload — the one device every System runs on.
func newDevice() *simio.Device {
	return simio.NewDevice(simio.PaperProfile().Scaled(catalog.ByteScale, catalog.FileScale))
}

// coreOptions maps the public Options onto the core's.
func coreOptions(o Options) core.Options {
	return core.Options{
		NoSemanticDedup: o.NoSemanticDedup,
		NoBaseSelection: o.NoBaseSelection,
		Parallelism:     o.Parallelism,
		CacheBytes:      o.CacheBytes,
		TenantQuotas:    o.TenantQuotas,
	}
}

// ErrQuotaExceeded reports a publish rejected because it would push its
// tenant past the cap configured in Options.TenantQuotas. The repository
// graph is untouched by the rejected publish; any package or user-data
// blobs it stored ahead of the check are garbage a Vacuum reclaims.
var ErrQuotaExceeded = vmirepo.ErrQuotaExceeded

// NewWithOptions creates a System with explicit options.
func NewWithOptions(o Options) *System {
	dev := newDevice()
	return &System{
		dev: dev,
		sys: core.NewSystem(dev, coreOptions(o)),
		b:   builder.New(catalog.NewUniverse()),
	}
}

// OpenAt creates or reopens a disk-backed System rooted at path. Unlike
// New, the repository's blobs live in append-only segment files under
// path/blobs and its metadata in a snapshot + write-ahead-log pair under
// path (see internal/metawal; a legacy path/meta.db layout is migrated
// on first open), so the catalog can outgrow RAM and survives the
// process: reopening the same path (after a clean Close, a plain exit,
// or a crash — torn log tails are recovered and reported, see
// internal/blobstore/diskstore and internal/metawal) yields the
// repository as of everything published, plus whatever later operations
// the logs retained. Call Sync to force durability at a point in time;
// it is incremental on both the blob and the metadata side.
func OpenAt(path string, o Options) (*System, error) {
	dev := newDevice()
	repo, err := vmirepo.OpenAtOpts(path, dev, vmirepo.OpenOptions{
		WALCompactBytes:      o.WALCompactBytes,
		BlobCompactDeadRatio: o.BlobCompactDeadRatio,
	})
	if err != nil {
		return nil, err
	}
	return &System{
		dev: dev,
		sys: core.NewSystemWithRepo(repo, dev, coreOptions(o)),
		b:   builder.New(catalog.NewUniverse()),
	}, nil
}

// SyncStats reports one durable save of a disk-backed System.
type SyncStats struct {
	// Segments and SegmentBytes describe the incremental blob flush: only
	// bytes appended since the previous Sync are written, so a Sync after
	// publishing one image costs that image, not the whole store. Segments
	// counts segment flushes — a file flushed in both phases of the
	// repository sync (new blobs, then release records) counts twice,
	// while SegmentBytes never double-counts a byte.
	Segments     int
	SegmentBytes int64
	// IndexBytes is the blob index image committed atomically alongside.
	// MetaBytes is the metadata bytes this sync committed: the WAL delta
	// (framed mutation records plus one commit marker) on the hot path,
	// or the fresh full snapshot on a compacting sync — never a full
	// metadata rewrite for an incremental delta.
	IndexBytes int64
	MetaBytes  int64
	// MetaOps counts the metadata mutations committed; Compacted reports
	// that the metadata WAL was rewritten into a fresh snapshot of
	// MetaSnapshotBytes (zero otherwise).
	MetaOps           int
	Compacted         bool
	MetaSnapshotBytes int64
	// SegmentsCompacted and BytesReclaimed report blob segment compaction
	// this sync performed (automatically past the dead-ratio threshold, or
	// because Compact forced it): segments evacuated and the file bytes
	// their retirement freed. DeadBytes is the garbage still on disk after
	// — record bytes of released blobs whose segments have not yet crossed
	// the threshold.
	SegmentsCompacted int
	BytesReclaimed    int64
	DeadBytes         int64
}

// Sync makes a disk-backed System durable up to all completed operations.
// It may be called while traffic is in flight (it waits out any metadata
// commit in progress, exactly like Save) and is incremental. Systems
// created by New/NewWithOptions are memory-backed and return an error;
// use Save for those.
func (s *System) Sync() (SyncStats, error) {
	st, err := s.sys.Sync()
	if err != nil {
		return SyncStats{}, err
	}
	return newSyncStats(st), nil
}

// Compact is Sync with forced compaction of both stores: the metadata
// write-ahead log is rewritten as a fresh full snapshot with an empty
// log (bounding reopen cost), and blob segments holding the garbage of
// released images are evacuated and deleted (bounding disk usage).
// Size-, period- and dead-ratio-triggered compactions run automatically
// inside Sync; Compact exists for operators who want to pick the moment.
// Safe under concurrent traffic, like Sync.
func (s *System) Compact() (SyncStats, error) {
	st, err := s.sys.Compact()
	if err != nil {
		return SyncStats{}, err
	}
	return newSyncStats(st), nil
}

func newSyncStats(st vmirepo.SyncStats) SyncStats {
	return SyncStats{
		Segments:          st.Blobs.Segments,
		SegmentBytes:      st.Blobs.SegmentBytes,
		IndexBytes:        st.Blobs.IndexBytes,
		MetaBytes:         st.MetaBytes,
		MetaOps:           st.MetaOps,
		Compacted:         st.Compacted,
		MetaSnapshotBytes: st.MetaSnapshotBytes,
		SegmentsCompacted: st.Blobs.SegmentsCompacted,
		BytesReclaimed:    st.Blobs.BytesReclaimed,
		DeadBytes:         st.Blobs.DeadBytes,
	}
}

// Persistent reports whether the System is disk-backed (OpenAt): Sync
// and Compact commit to durable storage. Memory-backed Systems (New)
// return false — Save/Restore is their only persistence, and Sync and
// Compact return an error.
func (s *System) Persistent() bool { return s.sys.Repo().Persistent() }

// Close syncs a disk-backed System and releases its file handles; it is a
// no-op for memory-backed Systems.
func (s *System) Close() error { return s.sys.Close() }

// Image is a virtual machine image.
type Image struct {
	inner *vmi.Image
}

// Name returns the image name.
func (im *Image) Name() string { return im.inner.Name }

// Primaries returns the image's primary package set.
func (im *Image) Primaries() []string {
	return append([]string(nil), im.inner.Primaries...)
}

// Stats describes an image's size characteristics at paper scale.
type ImageStats struct {
	MountedGB    float64
	Files        int
	SerializedGB float64
}

// Stats mounts the image and reports its characteristics.
func (im *Image) Stats() (ImageStats, error) {
	st, err := im.inner.Stats()
	if err != nil {
		return ImageStats{}, err
	}
	return ImageStats{
		MountedGB:    float64(catalog.Paper(st.MountedBytes)) / 1e9,
		Files:        catalog.PaperFiles(st.Files),
		SerializedGB: float64(catalog.Paper(st.SerializedBytes)) / 1e9,
	}, nil
}

// InstalledPackages lists the packages installed in the image.
func (im *Image) InstalledPackages() ([]string, error) {
	fs, err := im.inner.Mount()
	if err != nil {
		return nil, err
	}
	mgr, err := pkgmgr.New(fs)
	if err != nil {
		return nil, err
	}
	pkgs, err := mgr.Installed()
	if err != nil {
		return nil, err
	}
	out := make([]string, len(pkgs))
	for i, p := range pkgs {
		out[i] = p.Name
	}
	return out, nil
}

// HasFile reports whether the guest filesystem contains the path.
func (im *Image) HasFile(path string) bool {
	fs, err := im.inner.Mount()
	if err != nil {
		return false
	}
	fi, err := fs.Stat(path)
	return err == nil && !fi.IsDir
}

// WriteUserFile writes a file under a user-data root inside the image
// (e.g. "/home/user/notes.txt"), simulating user activity between
// publishes.
func (im *Image) WriteUserFile(path string, data []byte) error {
	fs, err := im.inner.Mount()
	if err != nil {
		return err
	}
	if err := fs.MkdirAll(parentDir(path)); err != nil {
		return err
	}
	return fs.WriteFile(path, data)
}

func parentDir(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			if i == 0 {
				return "/"
			}
			return p[:i]
		}
	}
	return "/"
}

// EncodeWire writes the image in the Expelliarmus wire envelope — the
// upload format of the network repository server (cmd/expelserverd).
// The disk section streams straight from the virtual disk, so encoding
// never materializes the image in memory.
func (im *Image) EncodeWire(w io.Writer) error {
	return wire.WriteImage(w, im.inner)
}

// EncodeWireWith returns an EncodeWire-shaped encoder that carries
// lifecycle options (tenant account, expiry timestamp) in the envelope
// header — the form to hand a network client's Publish when uploading
// with a TTL or against a quota.
func (im *Image) EncodeWireWith(opts PublishOptions) func(io.Writer) error {
	return func(w io.Writer) error {
		return wire.WriteImageMeta(w, im.inner, wire.PublishMeta{
			Tenant:    opts.Tenant,
			ExpiresAt: opts.ExpiresAt,
		})
	}
}

// Templates lists the names of the paper's 19 evaluation images in the
// Table II upload order.
func Templates() []string {
	tpls := catalog.Paper19()
	out := make([]string, len(tpls))
	for i, t := range tpls {
		out[i] = t.Name
	}
	return out
}

// BuildImage builds one of the catalog's evaluation images by name
// ("Mini", "Redis", ..., "ElasticStack").
func (s *System) BuildImage(template string) (*Image, error) {
	tpl, ok := catalog.Find(template)
	if !ok {
		return nil, fmt.Errorf("expelliarmus: unknown template %q (see Templates())", template)
	}
	img, err := s.b.Build(tpl)
	if err != nil {
		return nil, err
	}
	return &Image{inner: img}, nil
}

// BuildIDESeries builds n successive IDE images (the Fig. 3c workload).
func (s *System) BuildIDESeries(n int) ([]*Image, error) {
	out := make([]*Image, 0, n)
	for _, tpl := range catalog.IDEBuilds(n) {
		img, err := s.b.Build(tpl)
		if err != nil {
			return nil, err
		}
		out = append(out, &Image{inner: img})
	}
	return out, nil
}

// PublishResult reports a publish operation.
type PublishResult struct {
	// Similarity is SimG against the best-matching master graph.
	Similarity float64
	// Exported lists the packages stored by this publish.
	Exported []string
	// Skipped counts packages already in the repository.
	Skipped int
	// BaseStored reports whether a new base image was stored.
	BaseStored bool
	// Seconds is the modeled publish time; Phases decomposes it.
	Seconds float64
	Phases  map[string]float64
}

// Publish decomposes and stores an image. The caller's Image remains
// usable (publishing operates on an internal clone).
func (s *System) Publish(img *Image) (*PublishResult, error) {
	return s.PublishWith(img, PublishOptions{})
}

// PublishOptions carry a publish's lifecycle metadata.
type PublishOptions struct {
	// Tenant names the account charged for the bytes this publish stores.
	// Charged usage is visible in TenantStats and enforced against
	// Options.TenantQuotas; empty means unaccounted.
	Tenant string
	// ExpiresAt is a Unix-seconds timestamp after which the image is
	// eligible for removal by ExpireAt (the repository's TTL sweep). Zero
	// means the image never expires.
	ExpiresAt int64
}

// PublishWith is Publish with lifecycle options: the tenant to charge
// and an optional expiry timestamp, both recorded durably with the image
// (and replicated to followers like every other mutation).
func (s *System) PublishWith(img *Image, opts PublishOptions) (*PublishResult, error) {
	rep, err := s.sys.PublishWith(img.inner.Clone(), core.PublishOpts{
		Tenant:    opts.Tenant,
		ExpiresAt: opts.ExpiresAt,
	})
	if err != nil {
		return nil, err
	}
	return newPublishResult(rep), nil
}

func newPublishResult(rep *core.PublishReport) *PublishResult {
	return &PublishResult{
		Similarity: rep.Similarity,
		Exported:   append([]string(nil), rep.Exported...),
		Skipped:    rep.Skipped,
		BaseStored: rep.BaseStored,
		Seconds:    rep.Seconds(),
		Phases:     phaseMap(rep.Meter),
	}
}

// PublishAll publishes a batch of images concurrently, bounded by
// Options.Parallelism, into the one shared repository. Results are
// returned in input order. Semantic deduplication applies across the whole
// batch: a package shared by several images is stored exactly once no
// matter how the concurrent publishes interleave.
//
// The batch is not a transaction: on error, publishes that already
// committed stay in the repository, and the returned slice reports them
// (one entry per input image, nil where a publish failed or never
// started), so callers can tell which images landed.
func (s *System) PublishAll(imgs []*Image) ([]*PublishResult, error) {
	inner := make([]*vmi.Image, len(imgs))
	for i, img := range imgs {
		inner[i] = img.inner.Clone()
	}
	reps, err := s.sys.PublishAll(inner)
	out := make([]*PublishResult, len(reps))
	for i, rep := range reps {
		if rep == nil {
			continue
		}
		out[i] = newPublishResult(rep)
	}
	return out, err
}

// RetrieveResult reports a retrieval operation.
type RetrieveResult struct {
	// Imported lists the packages installed during assembly.
	Imported []string
	// Seconds is the modeled retrieval time; Phases decomposes it into the
	// paper's Fig. 5a components (copy, launch, reset, import, ...).
	Seconds float64
	Phases  map[string]float64
}

// Retrieve reassembles a published VMI by name.
func (s *System) Retrieve(name string) (*Image, *RetrieveResult, error) {
	img, rep, err := s.sys.Retrieve(name)
	if err != nil {
		return nil, nil, err
	}
	return &Image{inner: img}, newRetrieveResult(rep), nil
}

// RetrieveTo reassembles a published VMI and streams its serialized
// image straight to w, returning the byte count. Unlike Retrieve, no
// in-memory Image is handed back: the bytes flow from the blob store
// through the assembly to w in bounded chunks, so peak memory does not
// grow with image size — this is the call a delivery endpoint should
// use to serve images it does not itself mutate.
func (s *System) RetrieveTo(w io.Writer, name string) (int64, *RetrieveResult, error) {
	n, rep, err := s.sys.RetrieveTo(w, name)
	if err != nil {
		return n, nil, err
	}
	return n, newRetrieveResult(rep), nil
}

func newRetrieveResult(rep *core.RetrieveReport) *RetrieveResult {
	return &RetrieveResult{
		Imported: append([]string(nil), rep.Imported...),
		Seconds:  rep.Seconds(),
		Phases:   phaseMap(rep.Meter),
	}
}

// RetrieveAll reassembles a batch of published VMIs concurrently, bounded
// by Options.Parallelism. Images and results are returned in input order;
// on error the slices carry the successful entries (nil where a retrieval
// failed or never started). Retrieval has no repository side effects, so
// a failed batch can simply be retried.
func (s *System) RetrieveAll(names []string) ([]*Image, []*RetrieveResult, error) {
	imgs, reps, err := s.sys.RetrieveAll(names)
	outImgs, outReps := mapRetrieveResults(len(names), imgs, reps)
	return outImgs, outReps, err
}

// mapRetrieveResults converts a core batch's parallel result slices into
// facade values, always returning one slot per input name. The two core
// slices normally share the input length, but a partially-failed batch
// must degrade to the entries that exist — a skewed or short pair maps to
// nil slots rather than an index panic, keeping RetrieveAll's
// partial-results promise even when the core misbehaves.
func mapRetrieveResults(n int, imgs []*vmi.Image, reps []*core.RetrieveReport) ([]*Image, []*RetrieveResult) {
	outImgs := make([]*Image, n)
	outReps := make([]*RetrieveResult, n)
	for i := 0; i < n; i++ {
		if i >= len(imgs) || i >= len(reps) || imgs[i] == nil || reps[i] == nil {
			continue
		}
		outImgs[i] = &Image{inner: imgs[i]}
		outReps[i] = newRetrieveResult(reps[i])
	}
	return outImgs, outReps
}

// Assemble builds a VMI that was never uploaded in this exact form from
// stored packages and a compatible base image. userDataFrom optionally
// names a published VMI whose user data to import.
func (s *System) Assemble(name string, primaries []string, userDataFrom string) (*Image, *RetrieveResult, error) {
	img, rep, err := s.sys.Assemble(name, primaries, userDataFrom)
	if err != nil {
		return nil, nil, err
	}
	return &Image{inner: img}, newRetrieveResult(rep), nil
}

func phaseMap(m *simio.Meter) map[string]float64 {
	out := map[string]float64{}
	for ph, d := range m.Snapshot() {
		out[string(ph)] = d.Seconds()
	}
	return out
}

// RepoStats summarises the repository at paper scale.
type RepoStats struct {
	Packages   int
	BaseImages int
	VMIs       int
	// TotalGB is the LIVE repository size — deduplicated blob payloads
	// plus metadata, the quantity the paper's growth figures plot. It is
	// not disk usage: on a disk-backed System, released images leave
	// garbage in segment files until compaction reclaims it.
	TotalGB float64
	// DiskGB is the physical blob bytes on disk (live records, dead
	// records awaiting compaction, and retiring files pinned by open
	// readers), at the same paper scale as TotalGB. Zero on memory-backed
	// Systems, where live is physical.
	DiskGB float64
	// DeadGB is the reclaimable portion of DiskGB — what a Compact would
	// free (modulo segments below the dead-ratio threshold).
	DeadGB float64
}

// RepoStats returns current repository statistics.
func (s *System) RepoStats() RepoStats {
	st := s.sys.Repo().Stats()
	return RepoStats{
		Packages:   st.Packages,
		BaseImages: st.Bases,
		VMIs:       st.VMIs,
		TotalGB:    float64(catalog.Paper(st.TotalBytes)) / 1e9,
		DiskGB:     float64(catalog.Paper(st.BlobDiskBytes)) / 1e9,
		DeadGB:     float64(catalog.Paper(st.BlobDeadBytes)) / 1e9,
	}
}

// MasterGraphDOT renders the repository's master graphs in Graphviz DOT
// format for inspection.
func (s *System) MasterGraphDOT() (string, error) { return s.sys.MasterDOT() }

// Remove deletes a published VMI, garbage-collecting packages, user data
// and base images no remaining VMI references.
func (s *System) Remove(name string) error { return s.sys.Remove(name) }

// ExpireAt removes every published VMI whose PublishOptions.ExpiresAt
// timestamp is at or before now (Unix seconds), returning the names
// removed. Each expiry runs the ordinary Remove transaction — packages,
// user data, base images and quota charges are reclaimed exactly as an
// operator removal would. Callers typically drive this from a ticker
// (see cmd/expelserverd's -expire-interval).
func (s *System) ExpireAt(now int64) ([]string, error) { return s.sys.ExpireAt(now) }

// VacuumStats reports what one Vacuum pass reclaimed.
type VacuumStats struct {
	// PackagesRemoved counts package records no VMI referenced.
	PackagesRemoved int
	// UserDataRemoved counts user-data archives whose VMI is gone.
	UserDataRemoved int
	// MetaRemoved counts lifecycle records whose VMI is gone.
	MetaRemoved int
	// BlobsReleased counts blobs no metadata record referenced (crash
	// orphans and the leftovers of abandoned or quota-rejected publishes).
	BlobsReleased int
	// BytesReclaimed is the payload bytes of the removed packages and
	// released blobs.
	BytesReclaimed int64
}

// Vacuum reclaims everything dangling in the repository: packages no VMI
// references, user-data archives and lifecycle records of VMIs that no
// longer exist, stale tenant accounting, and blobs no metadata record
// references — the orphans crash recovery deliberately resurrects and
// the leftovers of abandoned publishes. On a disk-backed System it then
// compacts both stores so the reclaimed bytes leave the disk. Safe under
// concurrent traffic (it runs as one repository transaction).
func (s *System) Vacuum() (VacuumStats, error) {
	st, err := s.sys.Vacuum()
	if err != nil {
		return VacuumStats{}, err
	}
	return VacuumStats{
		PackagesRemoved: st.PackagesRemoved,
		UserDataRemoved: st.UserDataRemoved,
		MetaRemoved:     st.MetaRemoved,
		BlobsReleased:   st.BlobsReleased,
		BytesReclaimed:  st.BytesReclaimed,
	}, nil
}

// TenantStats returns each tenant's recorded live bytes — what publishes
// charged (stored package, base and user-data bytes) minus what removals
// and expiries credited back. Tenants with zero usage are absent.
func (s *System) TenantStats() map[string]int64 { return s.sys.TenantStats() }

// Save serialises the repository (blobs and metadata) for durable storage.
// Save may be called while other operations are in flight: it waits out
// any metadata commit in progress, and the captured state is
// transactionally consistent — every VMI it records is retrievable after
// Restore. On a disk-backed System, a blob the store can no longer read
// faithfully (post-hoc disk damage) surfaces as an error here rather than
// as a corrupt snapshot.
func (s *System) Save() ([]byte, error) { return s.sys.Snapshot() }

// Restore creates a System over a previously saved repository image.
func Restore(snapshot []byte, o Options) (*System, error) {
	dev := newDevice()
	repo, err := vmirepo.Load(snapshot, dev)
	if err != nil {
		return nil, err
	}
	return &System{
		dev: dev,
		sys: core.NewSystemWithRepo(repo, dev, coreOptions(o)),
		b:   builder.New(catalog.NewUniverse()),
	}, nil
}

// CacheStats reports the retrieval cache's effectiveness. Enabled is
// false (and every counter zero) when the System runs without a cache
// (Options.CacheBytes == 0).
type CacheStats struct {
	Enabled bool
	// Hits and Misses count Retrieve/RetrieveAll lookups; Puts counts
	// assemblies inserted.
	Hits, Misses, Puts int64
	// Coalesced counts misses served by waiting on a concurrent assembly
	// of the same image (the miss singleflight) instead of assembling it
	// again — under a retrieval storm on one cold image, expect 1 miss
	// that assembles and the rest split between Coalesced and Hits.
	Coalesced int64
	// Evictions counts entries dropped to honour CacheBytes; Rejected
	// counts images too large to cache at all; Poisoned counts hits that
	// failed content verification (each surfaced as a retrieval error).
	Evictions, Rejected, Poisoned int64
	// StripeHits and StripeInvalidations break hits and stood-down
	// inserts (an assembly raced a mutation and was not cached) down by
	// the generation stripe of the retrieval's base image. Invalidation
	// is striped per base, so steady publish traffic shows up on its own
	// bases' stripes while a hot image's stripe keeps collecting hits.
	StripeHits, StripeInvalidations []int64
	// Entries and Bytes describe current occupancy; MaxBytes echoes
	// Options.CacheBytes.
	Entries  int
	Bytes    int64
	MaxBytes int64
	// FlightsLed counts assemblies started as the leader of a miss
	// singleflight; FlightsActive and FlightWaiters are gauges of flights
	// currently assembling and retrievals currently queued behind one;
	// FlightPeakDepth is the deepest follower queue any single flight has
	// built up — together the queue-depth meter of retrieval pressure.
	FlightsLed      int64
	FlightsActive   int64
	FlightWaiters   int64
	FlightPeakDepth int64
}

// CacheStats returns current retrieval-cache counters.
func (s *System) CacheStats() CacheStats {
	st, ok := s.sys.CacheStats()
	if !ok {
		return CacheStats{}
	}
	return CacheStats{
		Enabled:             true,
		Hits:                st.Hits,
		Misses:              st.Misses,
		Puts:                st.Puts,
		Coalesced:           st.Coalesced,
		Evictions:           st.Evictions,
		Rejected:            st.Rejected,
		Poisoned:            st.Poisoned,
		StripeHits:          st.StripeHits,
		StripeInvalidations: st.StripeInvalidations,
		Entries:             st.Entries,
		Bytes:               st.Bytes,
		MaxBytes:            st.MaxBytes,
		FlightsLed:          st.Flights.Led,
		FlightsActive:       st.Flights.Active,
		FlightWaiters:       st.Flights.Waiting,
		FlightPeakDepth:     st.Flights.PeakDepth,
	}
}

// ContainerLayer describes one layer of an exported container image.
type ContainerLayer struct {
	MediaType string
	Digest    string
	SizeGB    float64
	CreatedBy string
}

// ContainerManifest describes an exported container image.
type ContainerManifest struct {
	Name   string
	Base   string
	Layers []ContainerLayer
}

// ContainerExporter converts published VMIs into layered container images
// (the paper's Sec. VII future work). Layers are content-addressed and
// shared across exports.
type ContainerExporter struct {
	e *containerize.Exporter
}

// NewContainerExporter returns an exporter over this system's repository.
func (s *System) NewContainerExporter() *ContainerExporter {
	return &ContainerExporter{e: containerize.NewExporter(s.sys.Repo())}
}

// Export converts a published VMI into a container image manifest.
func (c *ContainerExporter) Export(vmiName string) (*ContainerManifest, error) {
	m, err := c.e.Export(vmiName)
	if err != nil {
		return nil, err
	}
	out := &ContainerManifest{Name: m.Name, Base: m.Base}
	for _, l := range m.Layers {
		out.Layers = append(out.Layers, ContainerLayer{
			MediaType: l.MediaType,
			Digest:    l.Digest,
			SizeGB:    float64(catalog.Paper(l.Size)) / 1e9,
			CreatedBy: l.CreatedBy,
		})
	}
	return out, nil
}

// StoreGB is the unique layer bytes held across all exports, at paper
// scale — shared layers count once.
func (c *ContainerExporter) StoreGB() float64 {
	return float64(catalog.Paper(c.e.TotalBytes())) / 1e9
}

// BaselineKind selects a comparison storage scheme.
type BaselineKind string

// Available baseline schemes (the paper's comparison systems plus the
// block-level dedup baseline from its related work).
const (
	BaselineQcow2      BaselineKind = "qcow2"
	BaselineGzip       BaselineKind = "qcow2+gzip"
	BaselineMirage     BaselineKind = "mirage"
	BaselineHemera     BaselineKind = "hemera"
	BaselineBlockFixed BaselineKind = "block-fixed"
	BaselineBlockRabin BaselineKind = "block-rabin"
)

// Baseline is a comparison VMI store.
type Baseline struct {
	store stores.Store
}

// NewBaseline creates a fresh baseline store of the given kind.
func (s *System) NewBaseline(kind BaselineKind) (*Baseline, error) {
	switch kind {
	case BaselineQcow2:
		return &Baseline{stores.NewQcow2(s.dev)}, nil
	case BaselineGzip:
		return &Baseline{stores.NewGzip(s.dev)}, nil
	case BaselineMirage:
		return &Baseline{stores.NewMirage(s.dev)}, nil
	case BaselineHemera:
		return &Baseline{stores.NewHemera(s.dev)}, nil
	case BaselineBlockFixed:
		return &Baseline{stores.NewBlockDedup(s.dev, chunker.NewFixed(catalog.ClusterSize))}, nil
	case BaselineBlockRabin:
		return &Baseline{stores.NewBlockDedup(s.dev, chunker.NewRabin(1024))}, nil
	default:
		return nil, fmt.Errorf("expelliarmus: unknown baseline %q", kind)
	}
}

// Name returns the scheme name.
func (b *Baseline) Name() string { return b.store.Name() }

// Publish stores the image and returns the modeled publish seconds.
func (b *Baseline) Publish(img *Image) (float64, error) {
	st, err := b.store.Publish(img.inner)
	if err != nil {
		return 0, err
	}
	return st.Seconds, nil
}

// Retrieve reconstructs a stored image and returns the modeled seconds.
func (b *Baseline) Retrieve(name string) (*Image, float64, error) {
	img, st, err := b.store.Retrieve(name)
	if err != nil {
		return nil, 0, err
	}
	return &Image{inner: img}, st.Seconds, nil
}

// SizeGB returns the repository footprint at paper scale.
func (b *Baseline) SizeGB() float64 {
	return float64(catalog.Paper(b.store.SizeBytes())) / 1e9
}
