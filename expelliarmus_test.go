package expelliarmus

import (
	"strings"
	"testing"
)

func TestTemplates(t *testing.T) {
	names := Templates()
	if len(names) != 19 {
		t.Fatalf("Templates = %d entries", len(names))
	}
	if names[0] != "Mini" || names[18] != "ElasticStack" {
		t.Fatalf("order: %v", names)
	}
}

func TestFacadePublishRetrieve(t *testing.T) {
	sys := New()
	img, err := sys.BuildImage("Redis")
	if err != nil {
		t.Fatal(err)
	}
	st, err := img.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.MountedGB < 1.5 || st.MountedGB > 2.5 {
		t.Fatalf("MountedGB = %.2f", st.MountedGB)
	}
	pub, err := sys.Publish(img)
	if err != nil {
		t.Fatal(err)
	}
	if !pub.BaseStored {
		t.Fatal("first publish should store the base")
	}
	if len(pub.Exported) != 1 || pub.Exported[0] != "redis-server" {
		t.Fatalf("Exported = %v", pub.Exported)
	}
	// The caller's image survives publishing.
	if !img.HasFile("/usr/bin/redis-server") {
		t.Fatal("publish consumed the caller's image")
	}
	rs := sys.RepoStats()
	if rs.VMIs != 1 || rs.BaseImages != 1 || rs.Packages != 1 {
		t.Fatalf("RepoStats = %+v", rs)
	}
	if rs.TotalGB < 1.5 || rs.TotalGB > 2.5 {
		t.Fatalf("TotalGB = %.2f", rs.TotalGB)
	}

	got, ret, err := sys.Retrieve("Redis")
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasFile("/usr/bin/redis-server") {
		t.Fatal("retrieved image missing redis")
	}
	if ret.Seconds <= 0 || ret.Phases["launch"] <= 0 {
		t.Fatalf("retrieve result: %+v", ret)
	}
	pkgs, err := got.InstalledPackages()
	if err != nil || len(pkgs) < 40 {
		t.Fatalf("InstalledPackages = %d, %v", len(pkgs), err)
	}
}

func TestFacadeAssemble(t *testing.T) {
	sys := New()
	for _, n := range []string{"Redis", "Base"} {
		img, err := sys.BuildImage(n)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Publish(img); err != nil {
			t.Fatal(err)
		}
	}
	custom, ret, err := sys.Assemble("combo", []string{"redis-server", "apache2"}, "Redis")
	if err != nil {
		t.Fatal(err)
	}
	if !custom.HasFile("/usr/bin/redis-server") || !custom.HasFile("/usr/bin/apache2") {
		t.Fatal("assembled image missing binaries")
	}
	if len(ret.Imported) < 2 {
		t.Fatalf("Imported = %v", ret.Imported)
	}
}

func TestFacadeUserDataFlow(t *testing.T) {
	sys := New()
	img, err := sys.BuildImage("Mini")
	if err != nil {
		t.Fatal(err)
	}
	if err := img.WriteUserFile("/home/user/project/notes.txt", []byte("remember the milk")); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Publish(img); err != nil {
		t.Fatal(err)
	}
	got, _, err := sys.Retrieve("Mini")
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasFile("/home/user/project/notes.txt") {
		t.Fatal("user data lost through publish/retrieve")
	}
}

func TestFacadeBaselines(t *testing.T) {
	sys := New()
	img, err := sys.BuildImage("Mini")
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []BaselineKind{
		BaselineQcow2, BaselineGzip, BaselineMirage, BaselineHemera,
		BaselineBlockFixed, BaselineBlockRabin,
	} {
		b, err := sys.NewBaseline(kind)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.Publish(img); err != nil {
			t.Fatalf("%s publish: %v", kind, err)
		}
		got, secs, err := b.Retrieve("Mini")
		if err != nil {
			t.Fatalf("%s retrieve: %v", kind, err)
		}
		if secs <= 0 {
			t.Errorf("%s retrieve seconds = %v", kind, secs)
		}
		if !got.HasFile("/usr/bin/bash") {
			t.Errorf("%s lost guest content", kind)
		}
		if b.SizeGB() <= 0 {
			t.Errorf("%s SizeGB = %v", kind, b.SizeGB())
		}
	}
	if _, err := sys.NewBaseline("bogus"); err == nil {
		t.Fatal("bogus baseline accepted")
	}
}

func TestFacadeErrors(t *testing.T) {
	sys := New()
	if _, err := sys.BuildImage("NoSuchTemplate"); err == nil ||
		!strings.Contains(err.Error(), "unknown template") {
		t.Fatalf("BuildImage error = %v", err)
	}
	if _, _, err := sys.Retrieve("never-published"); err == nil {
		t.Fatal("retrieve of unknown VMI succeeded")
	}
}

func TestFacadeVariants(t *testing.T) {
	plain := NewWithOptions(Options{NoSemanticDedup: true, NoBaseSelection: true})
	img, err := plain.BuildImage("Redis")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Publish(img); err != nil {
		t.Fatal(err)
	}
	if plain.RepoStats().BaseImages != 1 {
		t.Fatal("variant publish failed")
	}
}

func TestFacadeRemoveAndPersistence(t *testing.T) {
	sys := New()
	for _, n := range []string{"Mini", "Redis"} {
		img, err := sys.BuildImage(n)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Publish(img); err != nil {
			t.Fatal(err)
		}
	}
	snap := mustSave(t, sys)
	if len(snap) == 0 {
		t.Fatal("empty snapshot")
	}
	restored, err := Restore(snap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if restored.RepoStats() != sys.RepoStats() {
		t.Fatalf("restored stats differ: %+v vs %+v", restored.RepoStats(), sys.RepoStats())
	}
	img, _, err := restored.Retrieve("Redis")
	if err != nil || !img.HasFile("/usr/bin/redis-server") {
		t.Fatalf("restored retrieval: %v", err)
	}
	if err := restored.Remove("Redis"); err != nil {
		t.Fatal(err)
	}
	if restored.RepoStats().VMIs != 1 {
		t.Fatalf("stats after remove: %+v", restored.RepoStats())
	}
	if err := restored.Remove("Redis"); err == nil {
		t.Fatal("double remove succeeded")
	}
	if _, err := Restore([]byte("junk"), Options{}); err == nil {
		t.Fatal("restored garbage")
	}
}

func TestBuildIDESeries(t *testing.T) {
	sys := New()
	builds, err := sys.BuildIDESeries(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(builds) != 2 {
		t.Fatalf("builds = %d", len(builds))
	}
	if builds[0].Name() == builds[1].Name() {
		t.Fatal("builds share a name")
	}
	p1, err := sys.Publish(builds[0])
	if err != nil {
		t.Fatal(err)
	}
	p2, err := sys.Publish(builds[1])
	if err != nil {
		t.Fatal(err)
	}
	// Second build: everything dedups (packages identical).
	if len(p2.Exported) != 0 {
		t.Fatalf("second build exported %v", p2.Exported)
	}
	if p2.Skipped == 0 || p1.Skipped != 0 {
		t.Fatalf("skip counts: first=%d second=%d", p1.Skipped, p2.Skipped)
	}
}
