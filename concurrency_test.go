package expelliarmus

import (
	"sync"
	"testing"
)

// TestConcurrentSystemStress shares one System between 8 goroutines that
// build, publish, retrieve and remove disjoint template sets, while the
// main goroutine takes Save snapshots mid-traffic and verifies each one
// restores to a repository whose recorded VMIs are all retrievable.
func TestConcurrentSystemStress(t *testing.T) {
	sys := NewWithOptions(Options{Parallelism: 2})
	names := Templates()
	const workers = 8
	if len(names) < 2*workers {
		t.Fatalf("catalog too small: %d templates", len(names))
	}

	var wg sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := names[2*w : 2*w+2]
			for _, name := range mine {
				img, err := sys.BuildImage(name)
				if err != nil {
					t.Errorf("worker %d build %s: %v", w, name, err)
					return
				}
				if err := img.WriteUserFile("/home/user/"+name+".txt", []byte("data for "+name)); err != nil {
					t.Errorf("worker %d user file %s: %v", w, name, err)
					return
				}
				pub, err := sys.Publish(img)
				if err != nil {
					t.Errorf("worker %d publish %s: %v", w, name, err)
					return
				}
				if pub.Seconds <= 0 {
					t.Errorf("worker %d publish %s: no modeled cost", w, name)
					return
				}
				got, ret, err := sys.Retrieve(name)
				if err != nil {
					t.Errorf("worker %d retrieve %s: %v", w, name, err)
					return
				}
				if got.Name() != name || ret.Seconds <= 0 {
					t.Errorf("worker %d retrieve %s: got %q (%.1fs)", w, name, got.Name(), ret.Seconds)
					return
				}
				if !got.HasFile("/home/user/" + name + ".txt") {
					t.Errorf("worker %d retrieve %s: user data missing", w, name)
					return
				}
			}
			// Churn: remove the first image and publish it again, racing
			// the garbage collector against other workers' publishes.
			if err := sys.Remove(mine[0]); err != nil {
				t.Errorf("worker %d remove %s: %v", w, mine[0], err)
				return
			}
			img, err := sys.BuildImage(mine[0])
			if err != nil {
				t.Errorf("worker %d rebuild %s: %v", w, mine[0], err)
				return
			}
			if _, err := sys.Publish(img); err != nil {
				t.Errorf("worker %d republish %s: %v", w, mine[0], err)
				return
			}
		}(w)
	}
	go func() { wg.Wait(); close(done) }()

	// Save/Restore round trips while traffic is in flight. Every snapshot
	// must be internally consistent: Restore succeeds and every recorded
	// VMI assembles.
	snapshots := 0
	for {
		select {
		case <-done:
			if snapshots == 0 {
				t.Fatal("traffic finished before any mid-flight snapshot")
			}
			if t.Failed() {
				return
			}
			// Final round trip on the quiesced system.
			restored, err := Restore(mustSave(t, sys), Options{Parallelism: 2})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := restored.RepoStats(), sys.RepoStats(); got != want {
				t.Fatalf("restored stats %+v != live stats %+v", got, want)
			}
			for _, name := range sys.sys.Repo().VMIs() {
				if _, _, err := restored.Retrieve(name); err != nil {
					t.Fatalf("restored retrieve %s: %v", name, err)
				}
			}
			return
		default:
		}
		restored, err := Restore(mustSave(t, sys), Options{})
		if err != nil {
			t.Fatalf("mid-flight snapshot %d: %v", snapshots, err)
		}
		for _, name := range restored.sys.Repo().VMIs() {
			if _, _, err := restored.Retrieve(name); err != nil {
				t.Fatalf("mid-flight snapshot %d: VMI %s not retrievable: %v", snapshots, name, err)
			}
		}
		snapshots++
	}
}

// TestPublishAllRetrieveAll checks the batch APIs: input-order results,
// batch-wide dedup, and single-image semantics preserved.
func TestPublishAllRetrieveAll(t *testing.T) {
	sys := NewWithOptions(Options{Parallelism: 8})
	names := []string{"Mini", "Redis", "PostgreSql", "Django", "Base", "Lapp"}
	imgs := make([]*Image, len(names))
	for i, n := range names {
		img, err := sys.BuildImage(n)
		if err != nil {
			t.Fatal(err)
		}
		imgs[i] = img
	}

	pubs, err := sys.PublishAll(imgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(pubs) != len(names) {
		t.Fatalf("got %d publish results, want %d", len(pubs), len(names))
	}
	for i, p := range pubs {
		if p == nil || p.Seconds <= 0 {
			t.Fatalf("publish result %d (%s) invalid: %+v", i, names[i], p)
		}
	}

	// Batch-wide dedup: apache2 appears in both Base and Lapp; exactly one
	// publish may have exported it.
	exporters := 0
	for _, p := range pubs {
		for _, e := range p.Exported {
			if e == "apache2" {
				exporters++
			}
		}
	}
	if exporters != 1 {
		t.Fatalf("apache2 exported by %d publishes, want exactly 1", exporters)
	}

	got, rets, err := sys.RetrieveAll(names)
	if err != nil {
		t.Fatal(err)
	}
	for i := range names {
		if got[i].Name() != names[i] {
			t.Fatalf("retrieved[%d] = %q, want %q", i, got[i].Name(), names[i])
		}
		if rets[i].Seconds <= 0 {
			t.Fatalf("retrieve %s: no modeled cost", names[i])
		}
	}

	// The caller's images remain usable after PublishAll (clone semantics,
	// matching Publish).
	if _, err := imgs[0].Stats(); err != nil {
		t.Fatalf("input image consumed by PublishAll: %v", err)
	}
}
