package expelliarmus

import (
	"bytes"
	"fmt"
	"testing"
)

// mustSave unwraps Save, failing the test on a snapshot error (healthy
// backends never produce one).
func mustSave(t *testing.T, sys *System) []byte {
	t.Helper()
	snap, err := sys.Save()
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	return snap
}

// publishCatalog publishes every Table II template into sys and returns a
// deterministic trace of the publish reports.
func publishCatalog(t *testing.T, sys *System) string {
	t.Helper()
	var trace string
	for _, name := range Templates() {
		img, err := sys.BuildImage(name)
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		pub, err := sys.Publish(img)
		if err != nil {
			t.Fatalf("publish %s: %v", name, err)
		}
		trace += fmt.Sprintf("%s sim=%.6f exported=%v skipped=%d base=%v t=%.6f\n",
			name, pub.Similarity, pub.Exported, pub.Skipped, pub.BaseStored, pub.Seconds)
	}
	return trace
}

// retrieveCatalog retrieves every Table II VMI from sys and returns a
// deterministic trace of the retrieval reports (imported packages, modeled
// seconds, phase decomposition — %v prints maps key-sorted).
func retrieveCatalog(t *testing.T, sys *System) string {
	t.Helper()
	var trace string
	for _, name := range Templates() {
		img, ret, err := sys.Retrieve(name)
		if err != nil {
			t.Fatalf("retrieve %s: %v", name, err)
		}
		if img == nil {
			t.Fatalf("retrieve %s: nil image", name)
		}
		trace += fmt.Sprintf("%s imported=%v t=%.6f phases=%v\n", name, ret.Imported, ret.Seconds, ret.Phases)
	}
	return trace
}

// TestRoundTripDiskMatchesMemory is the cross-backend round-trip property
// test: the Table II catalog published through the public facade must
// yield byte-identical Save() snapshots, identical repository stats and
// identical publish/retrieval reports whether the repository runs on the
// in-memory backend or the disk backend — and the disk repository must
// still match after Sync, Close and a real reopen from the on-disk files.
func TestRoundTripDiskMatchesMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("round-trip test skipped in -short mode")
	}

	mem := New()
	memPub := publishCatalog(t, mem)
	memSnap := mustSave(t, mem)
	memStats := mem.RepoStats()
	memRet := retrieveCatalog(t, mem)

	dir := t.TempDir()
	dsk, err := OpenAt(dir, Options{})
	if err != nil {
		t.Fatalf("OpenAt: %v", err)
	}
	dskPub := publishCatalog(t, dsk)
	if dskPub != memPub {
		t.Fatalf("publish reports differ between backends:\nmemory:\n%s\ndisk:\n%s", memPub, dskPub)
	}
	if dskSnap := mustSave(t, dsk); !bytes.Equal(dskSnap, memSnap) {
		t.Fatalf("disk Save() differs from memory Save(): %d vs %d bytes", len(dskSnap), len(memSnap))
	}
	// Logical catalog only: DiskGB/DeadGB describe the disk backend's
	// physical footprint, which the memory reference rightly lacks.
	dskStats, refStats := dsk.RepoStats(), memStats
	dskStats.DiskGB, dskStats.DeadGB = 0, 0
	refStats.DiskGB, refStats.DeadGB = 0, 0
	if dskStats != refStats {
		t.Fatalf("repo stats differ: disk %+v, memory %+v", dskStats, refStats)
	}
	if dskRet := retrieveCatalog(t, dsk); dskRet != memRet {
		t.Fatalf("retrieval reports differ between backends:\nmemory:\n%s\ndisk:\n%s", memRet, dskRet)
	}
	if _, err := dsk.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := dsk.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	re, err := OpenAt(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if reSnap := mustSave(t, re); !bytes.Equal(reSnap, memSnap) {
		t.Fatalf("reopened Save() differs from memory Save(): %d vs %d bytes", len(reSnap), len(memSnap))
	}
	reStats := re.RepoStats()
	reStats.DiskGB, reStats.DeadGB = 0, 0
	if reStats != refStats {
		t.Fatalf("reopened repo stats differ: %+v vs %+v", reStats, refStats)
	}
	if reRet := retrieveCatalog(t, re); reRet != memRet {
		t.Fatalf("retrieval reports differ after reopen:\nmemory:\n%s\nreopened:\n%s", memRet, reRet)
	}
}

// TestOpenAtDurabilityAcrossSessions exercises the facade durability
// story end to end: publish a few images, Sync, publish one more, Close
// (which syncs), reopen, and check the catalog — including the image
// published after the explicit Sync — plus the incremental property that
// the second Sync writes less than the first.
func TestOpenAtDurabilityAcrossSessions(t *testing.T) {
	dir := t.TempDir()
	sys, err := OpenAt(dir, Options{})
	if err != nil {
		t.Fatalf("OpenAt: %v", err)
	}
	names := []string{"Mini", "Redis", "Base"}
	for _, name := range names {
		img, err := sys.BuildImage(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Publish(img); err != nil {
			t.Fatal(err)
		}
	}
	first, err := sys.Sync()
	if err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if first.SegmentBytes == 0 || first.MetaBytes == 0 {
		t.Fatalf("first sync wrote nothing: %+v", first)
	}

	img, err := sys.BuildImage("MongoDb")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Publish(img); err != nil {
		t.Fatal(err)
	}
	second, err := sys.Sync()
	if err != nil {
		t.Fatalf("second Sync: %v", err)
	}
	if second.SegmentBytes == 0 {
		t.Fatalf("second sync wrote no blob bytes for the new image")
	}
	if second.SegmentBytes >= first.SegmentBytes {
		t.Fatalf("second sync (%d bytes) not smaller than first (%d bytes): sync is not incremental",
			second.SegmentBytes, first.SegmentBytes)
	}
	if err := sys.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	re, err := OpenAt(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	for _, name := range append(names, "MongoDb") {
		if _, _, err := re.Retrieve(name); err != nil {
			t.Fatalf("retrieve %s after reopen: %v", name, err)
		}
	}

	// Sync on a memory-backed system must refuse rather than silently
	// not persist.
	if _, err := New().Sync(); err == nil {
		t.Fatalf("Sync on memory-backed system did not error")
	}

	// A second OpenAt on the live repository (re is still open) must be
	// refused: two instances appending to the same segment files would
	// corrupt each other.
	if _, err := OpenAt(dir, Options{}); err == nil {
		t.Fatalf("concurrent OpenAt on a locked repository succeeded")
	}
}
